package engine

import (
	"fmt"
	"sort"
	"testing"

	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// The fault soak drives the same operation script against a store that
// fails exactly one I/O, for every possible position of that failure, and
// checks that after ClearFaults + Repair the database is indistinguishable
// (by value) from an oracle that ran only the operations that succeeded.
//
// Objects are addressed by logical name, never by OID: a failed insert is
// unwound and later allocations drift, so OIDs differ between runs while
// the visible values must not.

// soakOp is one engine call of the soak script.
type soakOp struct {
	name string
	run  func(db *DB, oids map[string]pagefile.OID) error
}

// soakOID resolves a logical name; it fails when the object's insert failed
// earlier in the same run, which makes every dependent op fail identically
// in the faulty run and the oracle.
func soakOID(oids map[string]pagefile.OID, key string) (pagefile.OID, error) {
	oid, ok := oids[key]
	if !ok {
		return pagefile.OID{}, fmt.Errorf("soak: object %q does not exist", key)
	}
	return oid, nil
}

// faultSoakScript is the deterministic workload: schema, data, three
// replication strategies (in-place, separate, collapsed), then updates that
// propagate, reference moves, a delete, and a late insert.
func faultSoakScript() []soakOp {
	ins := func(key, set string, mk func(o map[string]pagefile.OID) (map[string]schema.Value, error)) soakOp {
		return soakOp{"insert " + key, func(db *DB, o map[string]pagefile.OID) error {
			vals, err := mk(o)
			if err != nil {
				return err
			}
			oid, err := db.Insert(set, vals)
			if err != nil {
				return err
			}
			o[key] = oid
			return nil
		}}
	}
	upd := func(key, set string, mk func(o map[string]pagefile.OID) (map[string]schema.Value, error)) soakOp {
		return soakOp{"update " + key, func(db *DB, o map[string]pagefile.OID) error {
			oid, err := soakOID(o, key)
			if err != nil {
				return err
			}
			vals, err := mk(o)
			if err != nil {
				return err
			}
			return db.Update(set, oid, vals)
		}}
	}
	scalars := func(vals map[string]schema.Value) func(map[string]pagefile.OID) (map[string]schema.Value, error) {
		return func(map[string]pagefile.OID) (map[string]schema.Value, error) { return vals, nil }
	}
	withRef := func(field, target string, vals map[string]schema.Value) func(map[string]pagefile.OID) (map[string]schema.Value, error) {
		return func(o map[string]pagefile.OID) (map[string]schema.Value, error) {
			oid, err := soakOID(o, target)
			if err != nil {
				return nil, err
			}
			out := map[string]schema.Value{field: ref(oid)}
			for k, v := range vals {
				out[k] = v
			}
			return out, nil
		}
	}
	emp := func(key, dept string, age, salary int64) soakOp {
		return ins(key, "Emp1", withRef("dept", dept, map[string]schema.Value{
			"name": str(key), "age": num(age), "salary": num(salary),
		}))
	}

	return []soakOp{
		{"define types", func(db *DB, _ map[string]pagefile.OID) error {
			if err := db.DefineType("ORG", []schema.Field{
				{Name: "name", Kind: schema.KindString},
				{Name: "budget", Kind: schema.KindInt},
			}); err != nil {
				return err
			}
			if err := db.DefineType("DEPT", []schema.Field{
				{Name: "name", Kind: schema.KindString},
				{Name: "budget", Kind: schema.KindInt},
				{Name: "org", Kind: schema.KindRef, RefType: "ORG"},
			}); err != nil {
				return err
			}
			return db.DefineType("EMP", []schema.Field{
				{Name: "name", Kind: schema.KindString},
				{Name: "age", Kind: schema.KindInt},
				{Name: "salary", Kind: schema.KindInt},
				{Name: "dept", Kind: schema.KindRef, RefType: "DEPT"},
			})
		}},
		{"create Org", func(db *DB, _ map[string]pagefile.OID) error { return db.CreateSet("Org", "ORG") }},
		{"create Dept", func(db *DB, _ map[string]pagefile.OID) error { return db.CreateSet("Dept", "DEPT") }},
		{"create Emp1", func(db *DB, _ map[string]pagefile.OID) error { return db.CreateSet("Emp1", "EMP") }},

		ins("o1", "Org", scalars(map[string]schema.Value{"name": str("exo"), "budget": num(9000)})),
		ins("o2", "Org", scalars(map[string]schema.Value{"name": str("initech"), "budget": num(4000)})),
		ins("d1", "Dept", withRef("org", "o1", map[string]schema.Value{"name": str("toys"), "budget": num(100)})),
		ins("d2", "Dept", withRef("org", "o1", map[string]schema.Value{"name": str("shoes"), "budget": num(200)})),
		ins("d3", "Dept", withRef("org", "o2", map[string]schema.Value{"name": str("tools"), "budget": num(300)})),
		emp("e1", "d1", 30, 1000),
		emp("e2", "d1", 31, 2000),
		emp("e3", "d2", 32, 3000),
		emp("e4", "d2", 33, 4000),
		emp("e5", "d3", 34, 5000),
		emp("e6", "d3", 35, 6000),

		{"replicate dept.name", func(db *DB, _ map[string]pagefile.OID) error {
			return db.Replicate("Emp1.dept.name", catalog.InPlace)
		}},
		{"replicate dept.budget", func(db *DB, _ map[string]pagefile.OID) error {
			return db.Replicate("Emp1.dept.budget", catalog.Separate)
		}},
		{"replicate dept.org.name", func(db *DB, _ map[string]pagefile.OID) error {
			return db.Replicate("Emp1.dept.org.name", catalog.InPlace, catalog.WithCollapsed())
		}},

		upd("d1", "Dept", scalars(map[string]schema.Value{"budget": num(111)})),
		upd("o1", "Org", scalars(map[string]schema.Value{"name": str("megacorp")})),
		upd("e2", "Emp1", withRef("dept", "d2", nil)), // source ref move
		upd("d3", "Dept", withRef("org", "o1", nil)),  // intermediate ref move
		upd("d2", "Dept", scalars(map[string]schema.Value{"name": str("shoes2")})),
		{"delete e4", func(db *DB, o map[string]pagefile.OID) error {
			oid, err := soakOID(o, "e4")
			if err != nil {
				return err
			}
			if err := db.Delete("Emp1", oid); err != nil {
				return err
			}
			delete(o, "e4")
			return nil
		}},
		emp("e7", "d2", 26, 7000),
		upd("e7", "Emp1", scalars(map[string]schema.Value{"salary": num(7700)})),
		upd("o2", "Org", scalars(map[string]schema.Value{"budget": num(4444)})),
	}
}

// soakSnapshot renders every visible value in the database as sorted
// strings. OIDs are deliberately excluded: two runs that unwound different
// failed inserts allocate differently but must agree on values. Dotted
// projections read through whatever replicated structures exist, so a
// repaired path and the oracle's plain functional join must coincide.
func soakSnapshot(t *testing.T, db *DB) []string {
	t.Helper()
	var rows []string
	dump := func(set string, project []string) {
		if _, ok := db.Catalog().SetByName(set); !ok {
			rows = append(rows, set+": <absent>")
			return
		}
		res, err := db.Query(Query{Set: set, Project: project})
		if err != nil {
			t.Fatalf("snapshot query on %s: %v", set, err)
		}
		for _, r := range res.Rows {
			rows = append(rows, fmt.Sprintf("%s: %v", set, r.Values))
		}
	}
	dump("Org", []string{"name", "budget"})
	dump("Dept", []string{"name", "budget", "org.name", "org.budget"})
	dump("Emp1", []string{"name", "age", "salary", "dept.name", "dept.budget", "dept.org.name"})
	sort.Strings(rows)
	return rows
}

// runSoakScript executes the script, recording which ops succeeded. The
// buffer pool is dropped after every op so each one really reads and writes
// the store — otherwise the whole working set stays cached and the fault
// stream would only ever see file-creation allocates. A reset that fails
// under an injected fault leaves the frame dirty and resident; the next
// reset (or Close) retries it, so ignoring the error loses nothing.
func runSoakScript(db *DB, script []soakOp, succeeded []bool) (map[string]pagefile.OID, int) {
	oids := make(map[string]pagefile.OID)
	n := 0
	for i, op := range script {
		if err := op.run(db, oids); err == nil {
			if succeeded != nil {
				succeeded[i] = true
			}
			n++
		}
		_ = db.ColdCache()
	}
	return oids, n
}

// runFaultSoakAt runs the script with a single transient fault at operation
// index faultAt, repairs, and compares against a fault-free oracle that
// applies exactly the ops that succeeded. Returns how many ops succeeded.
func runFaultSoakAt(t *testing.T, script []soakOp, faultAt int64) int {
	t.Helper()
	fs := pagefile.NewFaultStore(pagefile.NewMemStore())
	fs.AddFault(pagefile.Fault{Index: faultAt, Op: pagefile.OpAny})
	db, err := Open(Config{Store: fs, PoolPages: 8})
	if err != nil {
		// The store can only fail Open if the fault fires while the engine
		// bootstraps; nothing was built, so there is nothing to check.
		return 0
	}
	defer db.Close()

	succeeded := make([]bool, len(script))
	_, n := runSoakScript(db, script, succeeded)

	// The transient fault is over; from here every I/O works. Repair must
	// bring the replicated state back to exact.
	fs.ClearFaults()
	rep, err := db.Repair()
	if err != nil {
		t.Fatalf("fault@%d: Repair: %v", faultAt, err)
	}
	if !rep.Clean() {
		for _, e := range rep.Remaining {
			t.Errorf("fault@%d: %v", faultAt, e)
		}
		t.Fatalf("fault@%d: Repair left %d violations", faultAt, len(rep.Remaining))
	}
	if errs := db.VerifyReplication(); len(errs) > 0 {
		t.Fatalf("fault@%d: VerifyReplication after Repair: %v", faultAt, errs)
	}
	if ts := db.TaintedSets(); len(ts) > 0 {
		t.Fatalf("fault@%d: sets still tainted after clean Repair: %v", faultAt, ts)
	}

	// Oracle: a pristine engine running only the ops that succeeded above.
	// An op that succeeded on the faulty run but fails here is itself a
	// divergence (the faulty run accepted work it could not have done).
	odb, err := Open(Config{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer odb.Close()
	ooids := make(map[string]pagefile.OID)
	for i, op := range script {
		if !succeeded[i] {
			continue
		}
		if err := op.run(odb, ooids); err != nil {
			t.Fatalf("fault@%d: op %q succeeded under fault but fails on the oracle: %v", faultAt, op.name, err)
		}
	}

	got, want := soakSnapshot(t, db), soakSnapshot(t, odb)
	if len(got) != len(want) {
		t.Fatalf("fault@%d: %d rows after repair, oracle has %d\n got: %v\nwant: %v",
			faultAt, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fault@%d: row %d after repair = %q, oracle has %q", faultAt, i, got[i], want[i])
		}
	}
	return n
}

// TestFaultSoak injects one transient I/O failure at every faultSoakStride'th
// operation index of the calibration run. The exhaustive version (stride 1)
// runs under -tags soak (make soak).
func TestFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fault soak skipped in -short mode")
	}
	script := faultSoakScript()

	// Calibration: fault-free run to size the operation stream.
	fs := pagefile.NewFaultStore(pagefile.NewMemStore())
	db, err := Open(Config{Store: fs, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, n := runSoakScript(db, script, nil); n != len(script) {
		t.Fatalf("calibration: only %d/%d ops succeeded without faults", n, len(script))
	}
	total := fs.Ops()
	db.Close()
	if total == 0 {
		t.Fatal("calibration run performed no store operations")
	}
	t.Logf("calibration: %d ops, %d store operations, stride %d", len(script), total, faultSoakStride)

	sawFailure := false
	for i := int64(0); i < total; i += faultSoakStride {
		if n := runFaultSoakAt(t, script, i); n < len(script) {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("no sampled fault index made any operation fail; the soak is not exercising anything")
	}
}
