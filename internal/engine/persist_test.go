package engine

import (
	"testing"

	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// TestReopenRoundTrip closes a fully configured file-backed database and
// reopens it: data, replication paths (all strategies and options), indexes,
// and the replication invariant must all survive.
func TestReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()

	var alice, research pagefile.OID
	{
		db := openEmployeeDB(t, Config{Dir: dir})
		st := populate(t, db, 3, 6, 40)
		alice = st.emps[0]
		research = st.depts[0]
		for _, r := range []struct {
			path  string
			strat catalog.Strategy
			opts  []catalog.PathOption
		}{
			{"Emp1.dept.name", catalog.InPlace, nil},
			{"Emp1.dept.budget", catalog.Separate, nil},
			{"Emp1.dept.org.name", catalog.InPlace, []catalog.PathOption{catalog.WithDeferred()}},
			{"Emp2.dept.org.name", catalog.InPlace, []catalog.PathOption{catalog.WithCollapsed()}},
		} {
			if err := db.Replicate(r.path, r.strat, r.opts...); err != nil {
				t.Fatalf("replicate %s: %v", r.path, err)
			}
		}
		if err := db.BuildIndex("emp1_salary", "Emp1", "salary", false); err != nil {
			t.Fatal(err)
		}
		if err := db.BuildIndex("emp1_deptname", "Emp1", "dept.name", false); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}

	db, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { db.Close() })

	// Data survived.
	if n, err := db.Count("Emp1"); err != nil || n != 40 {
		t.Fatalf("Count after reopen = %d, %v", n, err)
	}
	obj, err := db.Get("Emp1", alice)
	if err != nil || obj.MustGet("name").S != "emp-000" {
		t.Fatalf("Get after reopen: %v, %v", obj, err)
	}
	// Queries resolve through the restored replication paths.
	res, err := db.Query(Query{Set: "Emp1", Project: []string{"dept.name", "dept.budget", "dept.org.name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Indexes survived (base and path).
	ir, err := db.Query(Query{Set: "Emp1", Project: []string{"name"},
		Where: &Pred{Expr: "salary", Op: OpBetween, Value: num(50000), Value2: num(55000)}})
	if err != nil || ir.UsedIndex != "emp1_salary" {
		t.Fatalf("base index after reopen: %+v, %v", ir, err)
	}
	pr, err := db.Query(Query{Set: "Emp1", Project: []string{"name"},
		Where: &Pred{Expr: "dept.name", Op: OpEQ, Value: str("dept-01")}})
	if err != nil || pr.UsedIndex != "emp1_deptname" {
		t.Fatalf("path index after reopen: %+v, %v", pr, err)
	}
	// Propagation machinery works across the reopen boundary, including to
	// the restored indexes.
	if err := db.Update("Dept", research, map[string]schema.Value{"name": str("Renamed")}); err != nil {
		t.Fatal(err)
	}
	pr, err = db.Query(Query{Set: "Emp1", Project: []string{"name"},
		Where: &Pred{Expr: "dept.name", Op: OpEQ, Value: str("Renamed")}})
	if err != nil || len(pr.Rows) == 0 {
		t.Fatalf("propagated index lookup after reopen: %d rows, %v", len(pr.Rows), err)
	}
	// New DDL continues cleanly in the restored catalog.
	if err := db.Replicate("Emp2.dept.name", catalog.Separate); err != nil {
		t.Fatalf("new path after reopen: %v", err)
	}
	if _, err := db.Insert("Emp1", map[string]schema.Value{
		"name": str("post-reopen"), "age": num(1), "salary": num(1),
		"dept": ref(research),
	}); err != nil {
		t.Fatal(err)
	}
	verifyDB(t, db)
}

// TestReopenTwice exercises repeated open/close cycles.
func TestReopenTwice(t *testing.T) {
	dir := t.TempDir()
	{
		db := openEmployeeDB(t, Config{Dir: dir})
		populate(t, db, 2, 4, 10)
		if err := db.Replicate("Emp1.dept.name", catalog.Separate); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 3; cycle++ {
		db, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if _, err := db.Insert("Emp1", map[string]schema.Value{
			"name": str("x"), "age": num(int64(cycle)), "salary": num(1), "dept": ref(pagefile.NilOID),
		}); err != nil {
			t.Fatalf("cycle %d insert: %v", cycle, err)
		}
		verifyDB(t, db)
		if err := db.Close(); err != nil {
			t.Fatalf("cycle %d close: %v", cycle, err)
		}
	}
	db, _ := Open(Config{Dir: dir})
	defer db.Close()
	if n, _ := db.Count("Emp1"); n != 13 {
		t.Fatalf("Count after cycles = %d", n)
	}
}

func TestCatalogSnapshotRestore(t *testing.T) {
	db := openEmployeeDB(t, Config{})
	populate(t, db, 2, 4, 8)
	if err := db.Replicate("Emp1.dept.budget", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if err := db.Replicate("Emp1.dept.name", catalog.Separate); err != nil {
		t.Fatal(err)
	}
	data, err := db.cat.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := catalog.Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check structural equality.
	if len(got.Paths()) != len(db.cat.Paths()) {
		t.Fatalf("paths = %d vs %d", len(got.Paths()), len(db.cat.Paths()))
	}
	for i, p := range db.cat.Paths() {
		q := got.Paths()[i]
		if p.Spec.String() != q.Spec.String() || p.Strategy != q.Strategy || p.ID != q.ID {
			t.Fatalf("path %d mismatch: %+v vs %+v", i, p.Spec, q.Spec)
		}
		if len(p.Links) != len(q.Links) {
			t.Fatalf("path %d links: %d vs %d", i, len(p.Links), len(q.Links))
		}
	}
	emp, ok := got.TypeByName("EMP")
	if !ok || emp.FieldIndex("salary") != 2 {
		t.Fatal("EMP type not restored")
	}
	// Link-prefix sharing survives: a new path from Emp1 via dept must share
	// link 1 in the restored catalog.
	spec, _ := catalog.ParsePathSpec("Emp1.dept.org.name")
	p, err := got.AddPath(spec, catalog.InPlace)
	if err != nil {
		t.Fatal(err)
	}
	if p.LinkSequence()[0] != db.cat.Paths()[0].LinkSequence()[0] {
		t.Fatalf("restored catalog lost prefix sharing: %v", p.LinkSequence())
	}
	// Corrupt snapshots are rejected.
	if _, err := catalog.Restore([]byte("{")); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if _, err := catalog.Restore([]byte(`{"version": 99}`)); err == nil {
		t.Fatal("future version accepted")
	}
}
