package engine

import (
	"context"
	"errors"
	"fmt"

	"github.com/exodb/fieldrepl/internal/obs"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
	"github.com/exodb/fieldrepl/internal/wal"
)

// ErrTxnDone is returned by statements on a transaction that has already
// committed, rolled back, or aborted.
var ErrTxnDone = errors.New("engine: transaction has already been committed or rolled back")

// Txn is a multi-statement transaction. Two forms exist:
//
// DB.Begin takes the engine's exclusive lock; the transaction holds it until
// Commit or Rollback, so its statements see and produce a state no other
// operation can interleave with. All modifications — the statements' own
// writes and every replication propagation and index update they trigger —
// are captured in the buffer pool (no-steal: nothing reaches the data files
// while the transaction runs) and either committed atomically through the
// WAL or discarded in-memory by Rollback.
//
// DB.BeginSets declares the transaction's write footprint up front and takes
// only the shared lock plus the per-set locks of the footprint's closure:
// transactions over disjoint footprints run and commit concurrently.
// Mutating statements are confined to the declared sets (a statement outside
// them fails with ErrWriteConflict and aborts); queries may touch any set,
// reading committed snapshots outside the footprint.
//
// A failed mutating statement aborts the whole transaction: the engine's
// internals may have propagated partway, so the only consistent outcome is a
// full rollback. The statement's error is returned and every later call
// returns ErrTxnDone. Read-only statements (Get, Count, a pure Query) fail
// without aborting. A transaction must be used from a single goroutine, and
// the goroutine must not call the DB's one-shot operations while the
// transaction is open (they would deadlock behind its locks — for a
// BeginSets transaction, whenever the footprints overlap).
type Txn struct {
	db   *DB
	ctx  context.Context
	tr   *obs.Trace
	s    *sess
	done bool

	// fine marks a BeginSets transaction: shared lock + per-set locks + a
	// buffer-pool scope, instead of the exclusive lock + capture.
	fine bool
	fp   footprint

	// undo unwinds catalog/in-memory registrations (file-creation links,
	// scratch registrations) on rollback, in reverse order. Page state needs
	// no undo entries: the pool capture restores it wholesale.
	undo []func()
	// newFiles are page files created inside the transaction, logged with the
	// commit so recovery can recreate them.
	newFiles []wal.FileCreate
	// scratch marks query output files: session-local, excluded from the
	// commit record.
	scratch  map[pagefile.FileID]bool
	catDirty bool
}

// Begin starts an exclusive transaction. ctx, when non-nil, is checked at
// every statement and during scans: cancellation aborts the transaction.
// Begin blocks until the engine's writer lock is available; the lock is held
// until Commit or Rollback.
func (db *DB) Begin(ctx context.Context) (*Txn, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	tr := db.obs.Start(obs.KindTxn, "", "txn")
	db.lockWriter(tr)
	if err := db.pool.BeginCapture(); err != nil {
		db.mu.Unlock()
		db.obs.Finish(tr)
		return nil, err
	}
	t := &Txn{db: db, ctx: ctx, tr: tr}
	t.s = db.coarseSess(tr)
	db.txn = t
	db.writerTrace = tr
	return t, nil
}

// BeginSets starts a fine-grained transaction whose mutating statements are
// confined to the given sets. The per-set locks of the footprint closure
// (the sets plus everything their replicated fields and inverse links reach)
// are held until Commit or Rollback; a concurrent transaction or statement
// with a disjoint footprint is never blocked. Mutations outside the declared
// sets fail with ErrWriteConflict and abort; so does a statement that turns
// out to need exclusive mode (for instance the first write through a
// replication path whose link file does not exist yet). On a database
// without a WAL, BeginSets falls back to the exclusive Begin — there is no
// fine-grained path without page capture and logging.
func (db *DB) BeginSets(ctx context.Context, sets ...string) (*Txn, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	if db.wal == nil {
		return db.Begin(ctx)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("engine: BeginSets requires at least one set")
	}
	tr := db.obs.Start(obs.KindTxn, "", "txn-sets")
	db.mu.RLock()
	for _, name := range sets {
		if _, ok := db.cat.SetByName(name); !ok {
			db.mu.RUnlock()
			db.obs.Finish(tr)
			return nil, fmt.Errorf("%w: %s", ErrNoSuchSet, name)
		}
	}
	fp := db.computeFootprint(sets...)
	if err := db.setLocks.acquire(ctx, fp.sets, tr); err != nil {
		db.mu.RUnlock()
		db.obs.Finish(tr)
		return nil, err
	}
	db.pool.BeginScope()
	t := &Txn{db: db, ctx: ctx, tr: tr, fine: true, fp: fp}
	t.s = db.fineSess(tr, fp)
	t.s.txn = t
	return t, nil
}

// check gates every statement: a finished transaction returns ErrTxnDone,
// and a cancelled context aborts the transaction.
func (t *Txn) check() error {
	if t.done {
		return ErrTxnDone
	}
	if t.ctx != nil {
		if err := t.ctx.Err(); err != nil {
			t.abort()
			return err
		}
	}
	return nil
}

// checkTarget confines a fine transaction's mutations to its declared sets.
// A violation aborts: the caller declared the wrong footprint and must
// restart with the right one.
func (t *Txn) checkTarget(set string) error {
	if !t.fine || t.s.inFootprint(set) {
		return nil
	}
	err := fmt.Errorf("%w: set %q is outside the transaction's declared footprint %v", ErrWriteConflict, set, t.fp.sets)
	t.abort()
	return err
}

// statementErr maps a fine-mode escalation demand to the public conflict
// error; the capture scope has kept the failed statement invisible either
// way.
func (t *Txn) statementErr(err error) error {
	if t.fine && errors.Is(err, errNeedsCoarse) {
		return fmt.Errorf("%w: %w", ErrWriteConflict, err)
	}
	return err
}

// abort rolls the transaction back after a failed mutating statement and
// releases its locks.
func (t *Txn) abort() {
	if t.fine {
		t.rollbackFineTxn()
	} else {
		t.db.rollbackTxnLocked(t)
	}
	t.finish()
}

// rollbackFineTxn restores the scope's pages and unwinds the transaction's
// registrations (scratch files), in reverse order.
func (t *Txn) rollbackFineTxn() error {
	err := t.s.rollbackFine()
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.undo = nil
	return err
}

// unbind releases the transaction's locks and, for exclusive transactions,
// clears the engine's transaction binding. Callers have already committed or
// rolled back.
func (t *Txn) unbind() {
	db := t.db
	t.done = true
	if t.fine {
		db.setLocks.release(t.fp.sets)
		db.mu.RUnlock()
		return
	}
	db.txn = nil
	db.writerTrace = nil
	db.mu.Unlock()
}

// finish unbinds and closes the trace. Commit unbinds first and finishes the
// trace only after the durability wait, so the transaction's record includes
// its log wait.
func (t *Txn) finish() {
	t.unbind()
	t.db.obs.Finish(t.tr)
}

// Insert stores a new object in a set (see DB.Insert). On error the
// transaction is rolled back.
func (t *Txn) Insert(set string, vals map[string]schema.Value) (pagefile.OID, error) {
	if err := t.check(); err != nil {
		return pagefile.OID{}, err
	}
	if err := t.checkTarget(set); err != nil {
		return pagefile.OID{}, err
	}
	oid, err := t.s.insert(set, vals)
	if err != nil {
		err = t.statementErr(err)
		t.abort()
		return pagefile.OID{}, err
	}
	return oid, nil
}

// Update applies field changes to the object at oid (see DB.Update). On
// error the transaction is rolled back.
func (t *Txn) Update(set string, oid pagefile.OID, vals map[string]schema.Value) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.checkTarget(set); err != nil {
		return err
	}
	if err := t.s.update(set, oid, vals); err != nil {
		err = t.statementErr(err)
		t.abort()
		return err
	}
	return nil
}

// Delete removes an object (see DB.Delete). A clean refusal
// (core.ErrStillReferenced) aborts like any other statement error: the
// caller cannot tell refusals and partial failures apart without inspecting
// errors, and a aborted-on-refusal transaction is always consistent.
func (t *Txn) Delete(set string, oid pagefile.OID) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.checkTarget(set); err != nil {
		return err
	}
	if err := t.s.delete(set, oid); err != nil {
		err = t.statementErr(err)
		t.abort()
		return err
	}
	return nil
}

// Get reads an object. Errors do not abort the transaction. A fine
// transaction sees its own uncommitted writes inside the footprint and
// committed snapshots outside it.
func (t *Txn) Get(set string, oid pagefile.OID) (*schema.Object, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	typ, err := t.db.cat.SetType(set)
	if err != nil {
		return nil, err
	}
	return t.s.readObject(oid, typ)
}

// Count returns the number of objects in a set. Errors do not abort the
// transaction.
func (t *Txn) Count(set string) (int, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	f, err := t.s.SetFile(set)
	if err != nil {
		return 0, err
	}
	return f.Count()
}

// Query executes a retrieve inside the transaction, seeing its uncommitted
// writes. A query that only reads fails without aborting; one that mutates —
// emitting an output file or draining deferred propagation — aborts the
// transaction on error, because the mutation may have applied partway.
//
// In a fine transaction, a query on an in-footprint set drains that set's
// pending deferred propagation like any write path would; a query whose set
// lies outside the footprint cannot drain (the propagation would write
// unlocked files) and fails with ErrWriteConflict when a drain is pending.
func (t *Txn) Query(q Query) (*Result, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	drain := true
	if t.fine {
		drain = t.s.inFootprint(q.Set)
		if !drain && t.db.hasDeferredFor(q) {
			err := fmt.Errorf("%w: query on %q must drain deferred propagation outside the transaction's footprint %v", ErrWriteConflict, q.Set, t.fp.sets)
			t.abort()
			return nil, err
		}
	}
	mutates := q.EmitOutput || (drain && t.db.hasDeferredFor(q))
	res, err := t.s.query(t.ctx, q, drain)
	if err != nil {
		if t.fine && errors.Is(err, errNeedsCoarse) {
			err = t.statementErr(err)
			t.abort()
			return nil, err
		}
		if mutates {
			t.abort()
		}
	}
	return res, err
}

// UpdateWhere applies vals to every object of set matching where (see
// DB.UpdateWhere). On error the transaction is rolled back.
func (t *Txn) UpdateWhere(set string, where Pred, vals map[string]schema.Value) (int, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	if err := t.checkTarget(set); err != nil {
		return 0, err
	}
	n, _, err := t.s.updateWhere(t.ctx, set, where, vals)
	if err != nil {
		err = t.statementErr(err)
		t.abort()
		return 0, err
	}
	return n, nil
}

// Commit makes the transaction's effects atomic and durable: every dirty
// page is logged with a commit record, the log is forced (group commit
// batches concurrent committers into one fsync), and only then do the pages
// become eligible for write-back. On a database without a WAL (in-memory or
// WALDisabled), Commit just keeps the modifications. If the log append
// fails, the transaction is rolled back and the append error returned.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	db := t.db
	var lsn uint64
	var err error
	if t.fine {
		lsn, err = t.s.commitFine()
		if err != nil {
			// commitFine already rolled the pages back; unwind the
			// registrations too.
			for i := len(t.undo) - 1; i >= 0; i-- {
				t.undo[i]()
			}
			t.undo = nil
		}
	} else {
		lsn, err = db.commitTxnLocked(t)
	}
	t.unbind()
	// The durability wait happens after the locks are released, so
	// concurrent committers can append and pile onto one fsync.
	if err == nil {
		err = db.waitDurable(lsn, t.tr)
	}
	db.obs.Finish(t.tr)
	return err
}

// Rollback discards every modification the transaction made: captured pages
// are restored in-memory to their transaction-begin images and catalog
// registrations are unwound. Nothing the transaction did was ever written to
// the data files (no-steal), so rollback involves no I/O.
func (t *Txn) Rollback() error {
	if t.done {
		return ErrTxnDone
	}
	var err error
	if t.fine {
		err = t.rollbackFineTxn()
	} else {
		err = t.db.rollbackTxnLocked(t)
	}
	t.finish()
	return err
}

// fileCreated registers a page file created inside the transaction: logged
// at commit (so recovery recreates it), unwound by undo at rollback. The
// catalog changed with it.
func (t *Txn) fileCreated(fid pagefile.FileID, name string, undo func()) {
	t.newFiles = append(t.newFiles, wal.FileCreate{FID: fid, Name: name})
	t.undo = append(t.undo, undo)
	t.catDirty = true
}

// scratchFile registers a session-local query output file: its pages are
// excluded from the commit record, and undo removes the in-memory
// registration at rollback.
func (t *Txn) scratchFile(fid pagefile.FileID, undo func()) {
	if t.scratch == nil {
		t.scratch = map[pagefile.FileID]bool{}
	}
	t.scratch[fid] = true
	t.undo = append(t.undo, undo)
}

// commitTxnLocked logs and closes an exclusive transaction's capture. It
// returns the commit LSN for WaitDurable — 0 when nothing needed logging (a
// read-only transaction, or no WAL at all). On append failure the
// transaction is rolled back, so the caller never sees half-applied state.
// Called under db.mu.Lock with the capture open.
func (db *DB) commitTxnLocked(t *Txn) (uint64, error) {
	if db.wal == nil {
		// No durability layer: the capture held the modifications in the
		// pool; keeping them is the whole commit.
		db.pool.EndCapture()
		return 0, nil
	}
	var images []wal.PageImage
	for _, pid := range db.pool.CaptureDirty() {
		if t.scratch[pid.File] {
			continue
		}
		data, ok := db.pool.SnapshotPage(pid)
		if !ok {
			// Unreachable: no-steal keeps captured frames resident.
			err := fmt.Errorf("engine: commit: page %v not resident", pid)
			return 0, errors.Join(err, db.rollbackTxnLocked(t))
		}
		images = append(images, wal.PageImage{PID: pid, Data: data})
	}
	var catData []byte
	if t.catDirty {
		var err error
		catData, err = db.cat.Snapshot()
		if err != nil {
			return 0, errors.Join(err, db.rollbackTxnLocked(t))
		}
	}
	if len(t.newFiles) == 0 && len(images) == 0 && catData == nil {
		db.pool.EndCapture()
		return 0, nil
	}
	lsn, nbytes, err := db.wal.AppendCommit(t.newFiles, images, catData)
	if err != nil {
		return 0, errors.Join(err, db.rollbackTxnLocked(t))
	}
	// Stamp each frame with its record's LSN so the image eventually written
	// back matches the logged one, and so the write barrier and recovery's
	// LSN comparison see the right version.
	for i := range images {
		db.pool.StampLSN(images[i].PID, images[i].LSN)
	}
	db.pool.EndCapture()
	nrec := int64(len(t.newFiles)+len(images)) + 1
	if catData != nil {
		nrec++
	}
	t.tr.WAL(nrec, int64(nbytes))
	return lsn, nil
}

// rollbackTxnLocked restores every captured page and unwinds the
// transaction's catalog registrations. Called under db.mu.Lock.
func (db *DB) rollbackTxnLocked(t *Txn) error {
	err := db.pool.RollbackCapture()
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.undo = nil
	return err
}

// oneShot wraps a single write operation in an implicit transaction when the
// WAL is on: fn's modifications commit atomically, and a failed fn rolls
// back physically instead of compensating or tainting. It returns the commit
// LSN the caller must WaitDurable on after releasing the writer lock (0 when
// nothing was logged). Without a WAL, fn runs bare with the legacy
// compensate-or-taint semantics. Called under db.mu.Lock with no transaction
// open.
func (db *DB) oneShot(tr *obs.Trace, fn func() error) (uint64, error) {
	if db.wal == nil {
		return 0, fn()
	}
	if err := db.pool.BeginCapture(); err != nil {
		return 0, err
	}
	t := &Txn{db: db, tr: tr}
	db.txn = t
	err := fn()
	db.txn = nil
	t.done = true
	if err != nil {
		if rerr := db.rollbackTxnLocked(t); rerr != nil {
			err = errors.Join(err, rerr)
		}
		return 0, err
	}
	return db.commitTxnLocked(t)
}
