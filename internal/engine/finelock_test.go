package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/schema"
)

// openDisjointDB builds a WAL-backed database with n unrelated sets
// (W00..Wnn) of a ref-free type, so every write footprint is a singleton and
// writers to different sets share no lock.
func openDisjointDB(t *testing.T, n int, cfg Config) *DB {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.DefineType("PLAIN", []schema.Field{
		{Name: "name", Kind: schema.KindString},
		{Name: "n", Kind: schema.KindInt},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.CreateSet(fmt.Sprintf("W%02d", i), "PLAIN"); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestDisjointWritersConcurrent drives 16 writers into 16 disjoint sets in
// parallel. Under -race this exercises the whole fine-grained path — shared
// engine lock, per-set locks, scoped page capture, concurrent WAL appends,
// group commit — and the per-set counts prove no commit was lost or
// misrouted.
func TestDisjointWritersConcurrent(t *testing.T) {
	const writers = 16
	perWriter := 60
	if testing.Short() {
		perWriter = 15
	}
	db := openDisjointDB(t, writers, Config{PoolPages: 1024, PoolShards: 8})

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			set := fmt.Sprintf("W%02d", w)
			for i := 0; i < perWriter; i++ {
				oid, err := db.Insert(set, map[string]schema.Value{
					"name": str(fmt.Sprintf("w%02d-%04d", w, i)), "n": num(int64(i)),
				})
				if err != nil {
					errs[w] = fmt.Errorf("insert %s #%d: %w", set, i, err)
					return
				}
				if i%4 == 0 {
					if err := db.Update(set, oid, map[string]schema.Value{"n": num(int64(-i))}); err != nil {
						errs[w] = fmt.Errorf("update %s #%d: %w", set, i, err)
						return
					}
				}
				if i%8 == 0 {
					if err := db.Delete(set, oid); err != nil {
						errs[w] = fmt.Errorf("delete %s #%d: %w", set, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	deleted := (perWriter + 7) / 8
	for w := 0; w < writers; w++ {
		set := fmt.Sprintf("W%02d", w)
		n, err := db.Count(set)
		if err != nil {
			t.Fatal(err)
		}
		if n != perWriter-deleted {
			t.Fatalf("%s: %d objects, want %d", set, n, perWriter-deleted)
		}
	}
	verifyDB(t, db)
}

// TestOverlappingFootprintsSerialize runs two writers whose footprints share
// the replicated-field target set: updates to Dept propagate into Emp1's
// hidden copies, so both writers' footprint closures contain {Emp1, Emp2,
// Dept, Org} and they must fully serialize. No update may be lost and the
// replicated state must verify afterwards.
func TestOverlappingFootprintsSerialize(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 1024, PoolShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	defineEmployeeSchema(t, db)
	st := populate(t, db, 2, 4, 40)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}

	iters := 50
	if testing.Short() {
		iters = 12
	}
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dept := st.depts[w] // distinct objects, same set → same lock
			for i := 0; i < iters; i++ {
				if err := db.Update("Dept", dept, map[string]schema.Value{
					"name": str(fmt.Sprintf("d%d-%04d", w, i)),
				}); err != nil {
					werrs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range werrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The last write of each writer must have won on its own object: the
	// serialized schedule never interleaves two propagations mid-flight.
	for w := 0; w < 2; w++ {
		obj, err := db.Get("Dept", st.depts[w])
		if err != nil {
			t.Fatal(err)
		}
		name, _ := obj.Get("name")
		want := fmt.Sprintf("d%d-%04d", w, iters-1)
		if name.S != want {
			t.Fatalf("dept %d name %q, want %q (lost update)", w, name.S, want)
		}
	}
	// Replicated reads resolve through the hidden copies; they must match the
	// terminal values the writers left.
	res, err := db.Query(Query{Set: "Emp1", Project: []string{"name", "dept.name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("query returned %d rows", len(res.Rows))
	}
	verifyDB(t, db)
}

// TestRandomizedMultiSetFootprints hammers BeginSets transactions with
// randomized multi-set footprints from many goroutines. Sorted acquisition
// must keep the schedule deadlock-free (the test completing is the
// assertion -race can't make), and the per-set insert counts must add up.
func TestRandomizedMultiSetFootprints(t *testing.T) {
	const nsets = 6
	const writers = 8
	iters := 30
	if testing.Short() {
		iters = 8
	}
	db := openDisjointDB(t, nsets, Config{PoolPages: 1024, PoolShards: 8})

	var inserted [nsets]atomic.Int64
	var wg sync.WaitGroup
	werrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < iters; i++ {
				// A random 2-3 set footprint, deliberately unsorted.
				perm := rng.Perm(nsets)
				k := 2 + rng.Intn(2)
				sets := make([]string, k)
				for j := 0; j < k; j++ {
					sets[j] = fmt.Sprintf("W%02d", perm[j])
				}
				txn, err := db.BeginSets(context.Background(), sets...)
				if err != nil {
					werrs[w] = fmt.Errorf("BeginSets %v: %w", sets, err)
					return
				}
				for j, set := range sets {
					if _, err := txn.Insert(set, map[string]schema.Value{
						"name": str(fmt.Sprintf("w%d-%d-%d", w, i, j)), "n": num(int64(i)),
					}); err != nil {
						werrs[w] = fmt.Errorf("txn insert %s: %w", set, err)
						return
					}
				}
				if err := txn.Commit(); err != nil {
					werrs[w] = fmt.Errorf("commit %v: %w", sets, err)
					return
				}
				for j := 0; j < k; j++ {
					inserted[perm[j]].Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range werrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nsets; i++ {
		n, err := db.Count(fmt.Sprintf("W%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if int64(n) != inserted[i].Load() {
			t.Fatalf("W%02d: %d objects, want %d", i, n, inserted[i].Load())
		}
	}
	verifyDB(t, db)
}

// TestFineTxnFootprintViolation checks the BeginSets contract: a mutation on
// an undeclared set fails with ErrWriteConflict and aborts the transaction,
// while queries on undeclared sets read committed snapshots.
func TestFineTxnFootprintViolation(t *testing.T) {
	db := openDisjointDB(t, 3, Config{PoolPages: 512})
	if _, err := db.Insert("W01", map[string]schema.Value{"name": str("pre"), "n": num(1)}); err != nil {
		t.Fatal(err)
	}

	txn, err := db.BeginSets(context.Background(), "W00")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("W00", map[string]schema.Value{"name": str("in"), "n": num(1)}); err != nil {
		t.Fatal(err)
	}
	// Reading outside the footprint is fine.
	if res, err := txn.Query(Query{Set: "W01", Project: []string{"name"}}); err != nil {
		t.Fatal(err)
	} else if len(res.Rows) != 1 {
		t.Fatalf("snapshot query saw %d rows", len(res.Rows))
	}
	// Writing outside it aborts with ErrWriteConflict.
	if _, err := txn.Insert("W01", map[string]schema.Value{"name": str("out"), "n": num(2)}); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("out-of-footprint insert: %v, want ErrWriteConflict", err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after abort: %v, want ErrTxnDone", err)
	}
	// The abort rolled back the in-footprint insert too.
	if n, _ := db.Count("W00"); n != 0 {
		t.Fatalf("W00 has %d objects after abort, want 0", n)
	}
	verifyDB(t, db)
}

// TestSnapshotReadersNoLockWait runs readers concurrently with a committing
// writer and asserts the read traces charge zero lock wait: the snapshot read
// path takes neither the exclusive lock nor any set lock.
func TestSnapshotReadersNoLockWait(t *testing.T) {
	db := openDisjointDB(t, 2, Config{PoolPages: 1024, PoolShards: 8})
	for i := 0; i < 50; i++ {
		if _, err := db.Insert("W00", map[string]schema.Value{
			"name": str(fmt.Sprintf("seed-%03d", i)), "n": num(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var werr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Insert("W00", map[string]schema.Value{
				"name": str(fmt.Sprintf("live-%04d", i)), "n": num(int64(i)),
			}); err != nil {
				werr = err
				return
			}
		}
	}()

	iters := 60
	if testing.Short() {
		iters = 15
	}
	for i := 0; i < iters; i++ {
		res, rec, err := db.QueryTraced(Query{
			Set: "W00", Project: []string{"name", "n"},
			Where: &Pred{Expr: "n", Op: OpGE, Value: num(0)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) < 50 {
			t.Fatalf("reader %d saw %d rows, want >= 50", i, len(res.Rows))
		}
		if rec.LockWaitNs != 0 {
			t.Fatalf("reader %d charged %dns lock wait; snapshot reads must not block", i, rec.LockWaitNs)
		}
	}
	close(stop)
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	verifyDB(t, db)
}
