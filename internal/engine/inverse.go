package engine

import (
	"fmt"
	"strings"

	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// Inverse answers a bidirectional-reference query (paper §8: inverted paths
// "implementing inverse functions"): the OIDs of objects in the source set
// whose reference chain refExpr ("dept", or "dept.org") reaches target. When
// a replication path maintains the needed inverted-path link the answer
// comes from the target's link structure — no scan; otherwise the source set
// is scanned. via reports which ("inverted-path" or "scan").
func (db *DB) Inverse(source, refExpr string, target pagefile.OID) (oids []pagefile.OID, via string, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	refs := strings.Split(refExpr, ".")
	if len(refs) == 0 || refs[0] == "" {
		return nil, "", fmt.Errorf("engine: empty reference expression")
	}
	typ, err := db.cat.SetType(source)
	if err != nil {
		return nil, "", err
	}
	// Validate the chain against the schema.
	cur := typ
	for _, r := range refs {
		f, ok := cur.Field(r)
		if !ok || f.Kind != schema.KindRef {
			return nil, "", fmt.Errorf("engine: %s has no reference attribute %q", cur.Name, r)
		}
		next, ok := db.cat.TypeByName(f.RefType)
		if !ok {
			return nil, "", fmt.Errorf("engine: unknown type %s", f.RefType)
		}
		cur = next
	}

	// A read session: link structures and objects are read through snapshot
	// views, concurrent with fine-grained writers.
	s := db.readSess(nil)
	if got, ok, err := s.manager().InverseLookup(source, refs, target); err != nil {
		return nil, "", err
	} else if ok {
		return got, "inverted-path", nil
	}

	// Fallback: scan the source set and walk each object's chain.
	file, err := s.SetFile(source)
	if err != nil {
		return nil, "", err
	}
	err = file.Scan(func(oid pagefile.OID, payload []byte) error {
		obj, err := schema.Decode(typ, payload)
		if err != nil {
			return err
		}
		reached, err := s.chainReaches(typ, obj, refs, target)
		if err != nil {
			return err
		}
		if reached {
			oids = append(oids, oid)
		}
		return nil
	})
	return oids, "scan", err
}

// chainReaches walks obj's reference chain and reports whether it ends at
// target.
func (s *sess) chainReaches(typ *schema.Type, obj *schema.Object, refs []string, target pagefile.OID) (bool, error) {
	cur, curType := obj, typ
	for i, r := range refs {
		v, _ := cur.Get(r)
		if v.R.IsNil() {
			return false, nil
		}
		if i == len(refs)-1 {
			return v.R == target, nil
		}
		f, _ := curType.Field(r)
		nextType, ok := s.db.cat.TypeByName(f.RefType)
		if !ok {
			return false, fmt.Errorf("engine: unknown type %s", f.RefType)
		}
		next, err := s.readObject(v.R, nextType)
		if err != nil {
			return false, err
		}
		cur, curType = next, nextType
	}
	return false, nil
}

// FlushReplication drains all pending deferred propagations.
func (db *DB) FlushReplication() error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.mgr.FlushAllPending()
}

// PendingPropagations reports the number of queued deferred propagations.
func (db *DB) PendingPropagations() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.mgr.PendingPropagations()
}

// ReplStorage reports the auxiliary storage one replication path consumes:
// pages of link-object files and of the S′ file (shared figures repeat for
// paths sharing links or groups). It quantifies the paper's §4.2 space
// discussion.
type ReplStorage struct {
	Path        string
	Strategy    string
	LinkPages   uint32
	SPrimePages uint32
}

// ReplicationStorage reports per-path auxiliary storage.
func (db *DB) ReplicationStorage() ([]ReplStorage, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.readSess(nil)
	var out []ReplStorage
	for _, p := range db.cat.Paths() {
		rs := ReplStorage{Path: p.Spec.String(), Strategy: p.Strategy.String()}
		links := p.Links
		if p.CollapsedLink != nil {
			links = append(links, p.CollapsedLink)
		}
		for _, l := range links {
			if !l.HasFile {
				continue
			}
			f, err := s.heapFor(l.FileID)
			if err != nil {
				return nil, err
			}
			n, err := f.NumPages()
			if err != nil {
				return nil, err
			}
			rs.LinkPages += n
		}
		if p.Group != nil && p.Group.HasFile {
			f, err := s.heapFor(p.Group.FileID)
			if err != nil {
				return nil, err
			}
			n, err := f.NumPages()
			if err != nil {
				return nil, err
			}
			rs.SPrimePages = n
		}
		out = append(out, rs)
	}
	return out, nil
}
