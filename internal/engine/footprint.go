package engine

import (
	"sort"

	"github.com/exodb/fieldrepl/internal/pagefile"
)

// footprint is a DML statement's write footprint: the sets whose locks the
// statement must hold (sorted by name, the global acquisition order) and the
// page files a commit in that footprint can dirty — set heaps, the sets'
// index trees, and the link/S′ files of every replication path the footprint
// intersects. The file set bounds the buffer-pool capture scope the statement
// commits or rolls back.
type footprint struct {
	sets  []string
	files map[pagefile.FileID]bool
}

// computeFootprint derives the footprint of a statement targeting the given
// sets. Replication couples sets through types: updating an object whose type
// appears in a replication path can propagate hidden values, link structures,
// and S′ registrations into any set holding objects of the path's other
// types — and those paths' types can chain into further paths. The closure is
// the fixpoint over path type-lists.
//
// A target set whose type appears in no path propagates nowhere: its
// footprint is itself alone, so writers to unreplicated sets never share
// locks (the disjoint-writer scaling case). Callers hold db.mu in either
// mode; the catalog is only mutated under the exclusive lock.
func (db *DB) computeFootprint(targets ...string) footprint {
	fp := footprint{files: map[pagefile.FileID]bool{}}
	inSets := map[string]bool{}
	for _, t := range targets {
		inSets[t] = true
	}

	// Type closure: seed with the targets' types, then absorb every path
	// sharing a type with the closure until nothing new joins.
	closure := map[string]bool{}
	for _, t := range targets {
		if s, ok := db.cat.SetByName(t); ok {
			closure[s.TypeName] = true
		}
	}
	paths := db.cat.Paths()
	inPath := map[uint8]bool{}
	for changed := true; changed; {
		changed = false
		for _, p := range paths {
			if inPath[p.ID] {
				continue
			}
			hit := false
			for _, t := range p.Types {
				if closure[t.Name] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			inPath[p.ID] = true
			changed = true
			for _, t := range p.Types {
				if !closure[t.Name] {
					closure[t.Name] = true
				}
			}
		}
	}

	// Sets: the targets always; other sets only when a path actually couples
	// their type (a set of an unreplicated type shares its type's other sets'
	// heaps with no one).
	if len(inPath) > 0 {
		for _, s := range db.cat.Sets() {
			if closure[s.TypeName] {
				inSets[s.Name] = true
			}
		}
	}
	for name := range inSets {
		fp.sets = append(fp.sets, name)
	}
	sort.Strings(fp.sets)

	// Files: set heaps, their indexes, and the intersecting paths' link and
	// S′ files.
	for _, name := range fp.sets {
		s, ok := db.cat.SetByName(name)
		if !ok {
			continue
		}
		fp.files[s.FileID] = true
		for _, ix := range db.cat.IndexesOn(name) {
			fp.files[ix.FileID] = true
		}
	}
	for _, p := range paths {
		if !inPath[p.ID] {
			continue
		}
		links := p.Links
		if p.CollapsedLink != nil {
			links = append(links, p.CollapsedLink)
		}
		for _, l := range links {
			if l.HasFile {
				fp.files[l.FileID] = true
			}
		}
		if p.Group != nil && p.Group.HasFile {
			fp.files[p.Group.FileID] = true
		}
	}
	return fp
}

// contains reports whether every set in other's lock list is covered by fp.
func (fp footprint) contains(other footprint) bool {
	held := map[string]bool{}
	for _, s := range fp.sets {
		held[s] = true
	}
	for _, s := range other.sets {
		if !held[s] {
			return false
		}
	}
	return true
}
