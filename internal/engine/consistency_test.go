package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// TestQueryConsistencyUnderMutation is the engine-level oracle test: a
// database with a mix of replication strategies (including a deferred path)
// takes random mutations, and after every batch the replicated query answers
// are compared against manually recomputed functional joins. This catches
// any divergence between what the executor serves from replicated data and
// the ground truth reachable through the forward references.
func TestQueryConsistencyUnderMutation(t *testing.T) {
	db := openEmployeeDB(t, Config{PoolPages: 1024})
	rng := rand.New(rand.NewSource(2024))

	var orgs, depts []pagefile.OID
	for i := 0; i < 5; i++ {
		oid, err := db.Insert("Org", map[string]schema.Value{
			"name": str(fmt.Sprintf("org-%d", i)), "budget": num(int64(i * 100)),
		})
		if err != nil {
			t.Fatal(err)
		}
		orgs = append(orgs, oid)
	}
	for i := 0; i < 12; i++ {
		oid, err := db.Insert("Dept", map[string]schema.Value{
			"name": str(fmt.Sprintf("dept-%d", i)), "budget": num(int64(i)),
			"org": ref(orgs[rng.Intn(len(orgs))]),
		})
		if err != nil {
			t.Fatal(err)
		}
		depts = append(depts, oid)
	}
	var emps []pagefile.OID
	for i := 0; i < 40; i++ {
		oid, err := db.Insert("Emp1", map[string]schema.Value{
			"name": str(fmt.Sprintf("e-%d", i)), "age": num(int64(i)), "salary": num(int64(i * 1000)),
			"dept": ref(depts[rng.Intn(len(depts))]),
		})
		if err != nil {
			t.Fatal(err)
		}
		emps = append(emps, oid)
	}

	// Mixed replication configuration over the same data.
	for _, r := range []struct {
		path  string
		strat catalog.Strategy
		opts  []catalog.PathOption
	}{
		{"Emp1.dept.name", catalog.InPlace, nil},
		{"Emp1.dept.budget", catalog.Separate, nil},
		{"Emp1.dept.org.name", catalog.InPlace, []catalog.PathOption{catalog.WithDeferred()}},
		{"Emp1.dept.org.budget", catalog.Separate, nil},
	} {
		if err := db.Replicate(r.path, r.strat, r.opts...); err != nil {
			t.Fatalf("replicate %s: %v", r.path, err)
		}
	}

	// groundTruth recomputes a path expression by pure reference walking.
	groundTruth := func(e pagefile.OID, refs []string, field string) schema.Value {
		t.Helper()
		obj, err := db.Get("Emp1", e)
		if err != nil {
			t.Fatal(err)
		}
		cur := obj
		typs := []string{"DEPT", "ORG"}
		for i, r := range refs {
			v, _ := cur.Get(r)
			if v.R.IsNil() {
				return schema.Value{}
			}
			typ, _ := db.cat.TypeByName(typs[i])
			next, err := db.ReadObject(v.R, typ)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		v, _ := cur.Get(field)
		return v
	}

	check := func(step int) {
		t.Helper()
		res, err := db.Query(Query{
			Set:     "Emp1",
			Project: []string{"dept.name", "dept.budget", "dept.org.name", "dept.org.budget"},
		})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		exprs := []struct {
			refs  []string
			field string
		}{
			{[]string{"dept"}, "name"},
			{[]string{"dept"}, "budget"},
			{[]string{"dept", "org"}, "name"},
			{[]string{"dept", "org"}, "budget"},
		}
		for _, row := range res.Rows {
			for i, ex := range exprs {
				want := groundTruth(row.OID, ex.refs, ex.field)
				got := row.Values[i]
				// A broken chain yields the zero value through replication
				// and an invalid value from the pure walk; normalize.
				if want.Kind == schema.KindInvalid {
					want = schema.Zero(got.Kind)
				}
				if !got.Equal(want) {
					t.Fatalf("step %d: emp %v %v.%s = %v, ground truth %v",
						step, row.OID, ex.refs, ex.field, got, want)
				}
			}
		}
		if errs := db.VerifyReplication(); len(errs) > 0 {
			for _, e := range errs {
				t.Error(e)
			}
			t.Fatalf("step %d: invariant violated", step)
		}
	}

	check(-1)
	n := 0
	for step := 0; step < 150; step++ {
		switch rng.Intn(7) {
		case 0: // new employee
			n++
			oid, err := db.Insert("Emp1", map[string]schema.Value{
				"name": str(fmt.Sprintf("n-%d", n)), "age": num(1), "salary": num(1),
				"dept": ref(depts[rng.Intn(len(depts))]),
			})
			if err != nil {
				t.Fatal(err)
			}
			emps = append(emps, oid)
		case 1: // delete employee
			if len(emps) < 5 {
				continue
			}
			i := rng.Intn(len(emps))
			if err := db.Delete("Emp1", emps[i]); err != nil {
				t.Fatal(err)
			}
			emps = append(emps[:i], emps[i+1:]...)
		case 2: // employee changes dept (sometimes to null)
			target := ref(depts[rng.Intn(len(depts))])
			if rng.Intn(8) == 0 {
				target = ref(pagefile.NilOID)
			}
			if err := db.Update("Emp1", emps[rng.Intn(len(emps))], map[string]schema.Value{"dept": target}); err != nil {
				t.Fatal(err)
			}
		case 3: // dept changes org
			if err := db.Update("Dept", depts[rng.Intn(len(depts))], map[string]schema.Value{"org": ref(orgs[rng.Intn(len(orgs))])}); err != nil {
				t.Fatal(err)
			}
		case 4: // dept rename/rebudget
			n++
			if err := db.Update("Dept", depts[rng.Intn(len(depts))], map[string]schema.Value{
				"name": str(fmt.Sprintf("d-%d", n)), "budget": num(int64(rng.Intn(1000))),
			}); err != nil {
				t.Fatal(err)
			}
		case 5: // org rename/rebudget (feeds the deferred path)
			n++
			if err := db.Update("Org", orgs[rng.Intn(len(orgs))], map[string]schema.Value{
				"name": str(fmt.Sprintf("o-%d", n)), "budget": num(int64(rng.Intn(1000))),
			}); err != nil {
				t.Fatal(err)
			}
		case 6: // bulk update through the executor
			if _, err := db.UpdateWhere("Dept",
				Pred{Expr: "budget", Op: OpLE, Value: num(int64(rng.Intn(500)))},
				map[string]schema.Value{"budget": num(int64(rng.Intn(1000)))}); err != nil {
				t.Fatal(err)
			}
		}
		if step%25 == 24 {
			check(step)
		}
	}
	check(9999)
}
