package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/exodb/fieldrepl/internal/btree"
	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/heap"
	"github.com/exodb/fieldrepl/internal/obs"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// Op is a comparison operator for predicates.
type Op int

// Comparison operators.
const (
	OpEQ Op = iota
	OpLT
	OpLE
	OpGT
	OpGE
	OpBetween // Value <= x <= Value2
)

func (o Op) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpBetween:
		return "between"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Pred is a predicate on a field or dotted path expression.
type Pred struct {
	Expr   string // "salary" or "dept.org.name"
	Op     Op
	Value  schema.Value
	Value2 schema.Value // upper bound for OpBetween
}

// Query is a retrieve statement: project the given field/path expressions
// from the objects of Set satisfying Where.
type Query struct {
	Set     string
	Project []string
	Where   *Pred
	// Filters are additional conjuncts applied after Where; they never
	// drive index selection.
	Filters []Pred
	// EmitOutput writes the result tuples to an output file (the cost
	// model's T), counting its page writes.
	EmitOutput bool
	// ForceScan disables index selection (for baseline measurements).
	ForceScan bool
}

// Row is one result tuple.
type Row struct {
	OID    pagefile.OID
	Values []schema.Value
}

// Result is a query result.
type Result struct {
	Rows []Row
	// UsedIndex names the index chosen by the planner, if any.
	UsedIndex string
	// OutputPages is the page count of the generated output file when
	// EmitOutput was set.
	OutputPages uint32
}

// Query executes a retrieve. Pure reads run under the engine's shared
// reader lock, concurrently with other readers; a query that must mutate —
// emitting an output file or draining deferred propagation — upgrades to
// the writer lock first.
//
// With ScanWorkers > 1 a non-indexed query evaluates predicates and
// projections in parallel across page ranges; the result rows then arrive
// in no particular order (the sequential default preserves physical order).
func (db *DB) Query(q Query) (*Result, error) {
	res, _, err := db.QueryTraced(q)
	return res, err
}

// QueryCtx is Query under a context: cancellation is checked per record
// during scans and index ranges (including parallel scan workers), so a
// cancelled query stops fetching pages promptly. A nil ctx behaves like
// Query.
func (db *DB) QueryCtx(ctx context.Context, q Query) (*Result, error) {
	tr := db.obs.Start(obs.KindQuery, q.Set, queryDetail(q))
	res, err := db.runQuery(ctx, q, tr)
	db.obs.Finish(tr)
	return res, err
}

// QueryTraced executes a retrieve like Query and additionally returns the
// query's completed obs.Record: its own page I/O (buffer hits/misses, store
// reads/writes, prefetches) attributed exactly to this query regardless of
// what ran concurrently, plus plan kind and wall time. This — not the
// Reset/IO-delta pattern, which counts every concurrent operation's pages —
// is the way to measure per-query I/O.
func (db *DB) QueryTraced(q Query) (*Result, obs.Record, error) {
	tr := db.obs.Start(obs.KindQuery, q.Set, queryDetail(q))
	res, err := db.runQuery(nil, q, tr)
	rec := db.obs.Finish(tr)
	return res, rec, err
}

// queryDetail summarizes the qualifying predicate for trace records.
func queryDetail(q Query) string {
	if q.Where == nil {
		return ""
	}
	return q.Where.Expr
}

// runQuery acquires the right lock mode for q and executes it, charging I/O
// to tr.
func (db *DB) runQuery(ctx context.Context, q Query, tr *obs.Trace) (*Result, error) {
	db.mu.RLock()
	if q.EmitOutput || db.hasDeferredFor(q) {
		// Deferred propagation can only be enqueued under the writer lock,
		// so the re-check inside query (flushDeferredFor) is authoritative
		// once we hold it.
		db.mu.RUnlock()
		// Both mutating branches are writes: emitting an output file creates
		// an unlogged scratch file (which would desynchronize file IDs with
		// the primary), and draining deferred propagation mutates derived
		// state the primary will also stream. A follower refuses rather than
		// diverging.
		if err := db.writable(); err != nil {
			return nil, err
		}
		db.lockWriter(tr)
		// Bind the writer trace so deferred-propagation drains and output
		// inserts performed through core.Storage are charged to this query.
		db.writerTrace = tr
		var res *Result
		// The mutating branch runs as an implicit transaction: a deferred
		// drain that fails partway rolls back instead of leaving derived
		// state half-propagated.
		lsn, err := db.oneShot(tr, func() (qerr error) {
			res, qerr = db.query(ctx, q, tr)
			return qerr
		})
		db.writerTrace = nil
		db.mu.Unlock()
		if err == nil {
			err = db.waitDurable(lsn, tr)
		}
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	defer db.mu.RUnlock()
	return db.query(ctx, q, tr)
}

func (db *DB) query(ctx context.Context, q Query, tr *obs.Trace) (*Result, error) {
	typ, err := db.cat.SetType(q.Set)
	if err != nil {
		return nil, err
	}
	if err := db.flushDeferredFor(q); err != nil {
		return nil, err
	}
	res := &Result{}

	var out *heap.File
	if q.EmitOutput {
		db.nextOut++
		out, err = heap.Create(db.pool, fmt.Sprintf("__out_%d", db.nextOut))
		if err != nil {
			return nil, err
		}
		db.files[out.ID()] = out
		db.scratchFIDs[out.ID()] = true
		if t := db.txn; t != nil {
			// Output files are session scratch: not logged at commit, and the
			// in-memory registration is unwound at rollback (the on-disk file,
			// if any, is an orphan a reopen ignores).
			fid := out.ID()
			t.scratchFile(fid, func() { delete(db.files, fid) })
		}
		out = out.WithTrace(tr)
	}

	// eval applies the predicates and builds the projected row; it touches
	// only read paths (pool, catalog, replicated state) and is safe to call
	// from parallel scan workers. emit accumulates a matching row and is
	// serialized by the caller.
	eval := func(oid pagefile.OID, obj *schema.Object) (Row, bool, error) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return Row{}, false, err
			}
		}
		if q.Where != nil {
			okRow, err := db.evalPred(q.Set, obj, q.Where, tr)
			if err != nil || !okRow {
				return Row{}, false, err
			}
		}
		for i := range q.Filters {
			okRow, err := db.evalPred(q.Set, obj, &q.Filters[i], tr)
			if err != nil || !okRow {
				return Row{}, false, err
			}
		}
		row := Row{OID: oid, Values: make([]schema.Value, len(q.Project))}
		for i, expr := range q.Project {
			v, err := db.resolveExpr(q.Set, obj, expr, tr)
			if err != nil {
				return Row{}, false, err
			}
			row.Values[i] = v
		}
		return row, true, nil
	}
	emit := func(row Row) error {
		res.Rows = append(res.Rows, row)
		if out != nil {
			if _, err := out.Insert(encodeRow(row)); err != nil {
				return err
			}
		}
		return nil
	}
	process := func(oid pagefile.OID, obj *schema.Object) error {
		row, ok, err := eval(oid, obj)
		if err != nil || !ok {
			return err
		}
		return emit(row)
	}

	ran, err := db.tryIndexedAccess(q, typ, res, process, tr)
	if err != nil {
		return nil, err
	}
	if !ran {
		file, err := db.SetFile(q.Set)
		if err != nil {
			return nil, err
		}
		if err := db.scanProcess(file.WithTrace(tr), typ, eval, emit, tr); err != nil {
			return nil, err
		}
	}
	if out != nil {
		res.OutputPages, err = out.NumPages()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// scanProcess drives eval over every record of file — fanned out to
// ScanWorkers goroutines when configured — and feeds matches to emit, which
// is always called serially (under a mutex in the parallel case, so result
// accumulation and output-file inserts stay single-writer). Parallel scan
// workers share file's trace (the counters are atomic), so the whole scan's
// page I/O merges into the owning operation's trace.
func (db *DB) scanProcess(file *heap.File, typ *schema.Type, eval func(pagefile.OID, *schema.Object) (Row, bool, error), emit func(Row) error, tr *obs.Trace) error {
	if db.workers > 1 {
		tr.SetPlan("scan-parallel")
		var mu sync.Mutex
		return file.ScanParallel(db.workers, func(oid pagefile.OID, payload []byte) error {
			obj, err := schema.Decode(typ, payload)
			if err != nil {
				return err
			}
			row, ok, err := eval(oid, obj)
			if err != nil || !ok {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			return emit(row)
		})
	}
	tr.SetPlan("scan")
	return file.Scan(func(oid pagefile.OID, payload []byte) error {
		obj, err := schema.Decode(typ, payload)
		if err != nil {
			return err
		}
		row, ok, err := eval(oid, obj)
		if err != nil || !ok {
			return err
		}
		return emit(row)
	})
}

// deferredPathsFor returns the deferred replication paths with pending
// propagations that the query's expressions resolve through.
func (db *DB) deferredPathsFor(q Query) []*catalog.Path {
	exprs := append([]string(nil), q.Project...)
	if q.Where != nil {
		exprs = append(exprs, q.Where.Expr)
	}
	for _, f := range q.Filters {
		exprs = append(exprs, f.Expr)
	}
	var paths []*catalog.Path
	add := func(p *catalog.Path) {
		for _, q := range paths {
			if q == p {
				return
			}
		}
		paths = append(paths, p)
	}
	for _, expr := range exprs {
		refs, field := splitExpr(expr)
		if len(refs) == 0 {
			continue
		}
		spec := catalog.PathSpec{Source: q.Set, Refs: refs, Field: field}
		if p, ok := db.cat.FindPath(spec, catalog.InPlace); ok && p.Deferred && db.mgr.HasPending(p) {
			add(p)
		}
		// A deferred ref-replicating prefix (§3.3.3) may also serve this
		// expression; those count too.
		for k := len(refs); k >= 2; k-- {
			prefixSpec := catalog.PathSpec{Source: q.Set, Refs: refs[:k-1], Field: refs[k-1]}
			if p, ok := db.cat.FindPath(prefixSpec, catalog.InPlace); ok && p.Deferred && db.mgr.HasPending(p) {
				add(p)
			}
		}
	}
	return paths
}

// hasDeferredFor reports whether the query would have to drain deferred
// propagation (and therefore needs the writer lock).
func (db *DB) hasDeferredFor(q Query) bool { return len(db.deferredPathsFor(q)) > 0 }

// flushDeferredFor drains deferred propagation for every replication path
// the query's expressions resolve through ("not propagated until needed",
// paper §8): the first read after a burst of terminal updates pays one
// propagation per distinct updated terminal.
func (db *DB) flushDeferredFor(q Query) error {
	for _, p := range db.deferredPathsFor(q) {
		if err := db.mgr.FlushPath(p); err != nil {
			return err
		}
	}
	return nil
}

// tryIndexedAccess drives process over index-qualified candidates. It
// reports false when no usable index exists.
func (db *DB) tryIndexedAccess(q Query, typ *schema.Type, res *Result, process func(pagefile.OID, *schema.Object) error, tr *obs.Trace) (bool, error) {
	if q.Where == nil || q.ForceScan {
		return false, nil
	}
	refs, field := splitExpr(q.Where.Expr)
	var ix *catalog.Index
	var found bool
	if len(refs) == 0 {
		ix, found = db.cat.IndexFor(q.Set, field)
	} else {
		ix, found = db.cat.PathIndexFor(q.Set, refs, field)
	}
	if !found {
		return false, nil
	}
	tree := db.trees[ix.Name]
	if tree == nil {
		return false, nil
	}
	res.UsedIndex = ix.Name
	tr.SetPlan("index:" + ix.Name)
	lo, hi := keyRange(q.Where)
	var cbErr error
	err := tree.WithTrace(tr).Range(lo, hi, func(_ btree.Key, oid pagefile.OID) bool {
		obj, rerr := db.readObjectT(oid, typ, tr)
		if rerr != nil {
			cbErr = rerr
			return false
		}
		// The predicate is rechecked on the resolved value: string keys are
		// prefix-truncated and range bounds may be exclusive.
		if perr := process(oid, obj); perr != nil {
			cbErr = perr
			return false
		}
		return true
	})
	if err == nil {
		err = cbErr
	}
	return true, err
}

// keyRange computes the inclusive key range covering a predicate; exactness
// comes from the recheck.
func keyRange(p *Pred) (btree.Key, btree.Key) {
	k := keyFor(p.Value)
	switch p.Op {
	case OpEQ:
		return k, k
	case OpLT, OpLE:
		return btree.MinKey, k
	case OpGT, OpGE:
		return k, btree.MaxKey
	case OpBetween:
		return k, keyFor(p.Value2)
	default:
		return btree.MinKey, btree.MaxKey
	}
}

func splitExpr(expr string) (refs []string, field string) {
	parts := strings.Split(expr, ".")
	return parts[:len(parts)-1], parts[len(parts)-1]
}

// evalPred evaluates a predicate against an object, resolving path
// expressions through replicated data when possible and charging any reads
// to tr.
func (db *DB) evalPred(set string, obj *schema.Object, p *Pred, tr *obs.Trace) (bool, error) {
	v, err := db.resolveExpr(set, obj, p.Expr, tr)
	if err != nil {
		return false, err
	}
	c, err := compareValues(v, p.Value)
	if err != nil {
		return false, err
	}
	switch p.Op {
	case OpEQ:
		return c == 0, nil
	case OpLT:
		return c < 0, nil
	case OpLE:
		return c <= 0, nil
	case OpGT:
		return c > 0, nil
	case OpGE:
		return c >= 0, nil
	case OpBetween:
		if c < 0 {
			return false, nil
		}
		c2, err := compareValues(v, p.Value2)
		if err != nil {
			return false, err
		}
		return c2 <= 0, nil
	default:
		return false, fmt.Errorf("engine: unknown operator %v", p.Op)
	}
}

func compareValues(a, b schema.Value) (int, error) {
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("engine: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch a.Kind {
	case schema.KindInt:
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	case schema.KindFloat:
		switch {
		case a.F < b.F:
			return -1, nil
		case a.F > b.F:
			return 1, nil
		}
		return 0, nil
	case schema.KindString:
		return strings.Compare(a.S, b.S), nil
	default:
		return 0, fmt.Errorf("engine: cannot compare %s values", a.Kind)
	}
}

// resolveExpr resolves a projection/predicate expression against an object:
// a plain field directly; a dotted path through, in order of preference,
//
//  1. an exactly matching in-place replication path (zero extra I/O),
//  2. an exactly matching separate replication path (one S′ fetch),
//  3. a replicated reference attribute covering a prefix (§3.3.3 path
//     collapsing), continuing with a shortened functional join,
//  4. a full functional join.
func (db *DB) resolveExpr(set string, obj *schema.Object, expr string, tr *obs.Trace) (schema.Value, error) {
	refs, field := splitExpr(expr)
	if len(refs) == 0 {
		v, ok := obj.Get(field)
		if !ok {
			return schema.Value{}, fmt.Errorf("engine: set %s has no field %q", set, field)
		}
		return v, nil
	}
	// 1-2. Exact replicated path.
	spec := catalog.PathSpec{Source: set, Refs: refs, Field: field}
	if p, ok := db.cat.FindPath(spec, catalog.InPlace); ok {
		return db.readReplicatedByName(p, obj, field, tr)
	}
	if p, ok := db.cat.FindPath(spec, catalog.Separate); ok {
		return db.readReplicatedByName(p, obj, field, tr)
	}
	// 3. Longest replicated reference prefix (collapsing).
	for k := len(refs) - 1; k >= 1; k-- {
		prefixSpec := catalog.PathSpec{Source: set, Refs: refs[:k], Field: refs[k]}
		p, ok := db.cat.FindPath(prefixSpec, catalog.InPlace)
		if !ok {
			continue
		}
		hidden, err := db.readReplicatedByName(p, obj, refs[k], tr)
		if err != nil {
			return schema.Value{}, err
		}
		if hidden.Kind != schema.KindRef {
			continue
		}
		// Jump to position k+1 and walk the rest functionally.
		termField, _ := p.TerminalType().Field(p.Spec.Field)
		startType, ok := db.cat.TypeByName(termField.RefType)
		if !ok {
			return schema.Value{}, fmt.Errorf("engine: unknown type %s", termField.RefType)
		}
		return db.walkFunctional(startType, hidden.R, refs[k+1:], field, tr)
	}
	// 4. Full functional join.
	typ, err := db.cat.SetType(set)
	if err != nil {
		return schema.Value{}, err
	}
	return db.walkObjectPath(typ, obj, refs, field, tr)
}

// walkFunctional follows refs starting from an OID of type startType.
func (db *DB) walkFunctional(startType *schema.Type, start pagefile.OID, refs []string, field string, tr *obs.Trace) (schema.Value, error) {
	if start.IsNil() {
		return schema.Value{}, nil
	}
	obj, err := db.readObjectT(start, startType, tr)
	if err != nil {
		return schema.Value{}, err
	}
	return db.walkObjectPath(startType, obj, refs, field, tr)
}

// walkObjectPath performs the functional joins of a path expression,
// reading one object per level.
func (db *DB) walkObjectPath(typ *schema.Type, obj *schema.Object, refs []string, field string, tr *obs.Trace) (schema.Value, error) {
	cur := obj
	curType := typ
	for _, r := range refs {
		f, ok := curType.Field(r)
		if !ok || f.Kind != schema.KindRef {
			return schema.Value{}, fmt.Errorf("engine: %s has no reference attribute %q", curType.Name, r)
		}
		v, _ := cur.Get(r)
		if v.R.IsNil() {
			// Broken chain: zero value of the terminal field if resolvable,
			// else an invalid value.
			return schema.Value{}, nil
		}
		nextType, ok := db.cat.TypeByName(f.RefType)
		if !ok {
			return schema.Value{}, fmt.Errorf("engine: unknown type %s", f.RefType)
		}
		next, err := db.readObjectT(v.R, nextType, tr)
		if err != nil {
			return schema.Value{}, err
		}
		cur, curType = next, nextType
	}
	v, ok := cur.Get(field)
	if !ok {
		return schema.Value{}, fmt.Errorf("engine: %s has no field %q", curType.Name, field)
	}
	return v, nil
}

// readReplicatedByName resolves a replicated field by name on path p.
func (db *DB) readReplicatedByName(p *catalog.Path, obj *schema.Object, field string, tr *obs.Trace) (schema.Value, error) {
	fields := p.Fields
	if p.Strategy == catalog.Separate {
		fields = p.Group.Fields
	}
	for _, f := range fields {
		if f.Name == field {
			return db.mgr.ReadReplicated(p, obj, f.Idx, tr)
		}
	}
	return schema.Value{}, fmt.Errorf("engine: path %s does not replicate %q", p.Spec, field)
}

// encodeRow serializes a result tuple for the output file.
func encodeRow(r Row) []byte {
	buf := r.OID.AppendTo(nil)
	buf = append(buf, byte(len(r.Values)))
	for _, v := range r.Values {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case schema.KindInt:
			for i := 0; i < 8; i++ {
				buf = append(buf, byte(uint64(v.I)>>(8*i)))
			}
		case schema.KindFloat:
			buf = append(buf, []byte(fmt.Sprintf("%g", v.F))...)
			buf = append(buf, 0)
		case schema.KindString:
			buf = append(buf, byte(len(v.S)), byte(len(v.S)>>8))
			buf = append(buf, v.S...)
		case schema.KindRef:
			buf = v.R.AppendTo(buf)
		default:
			buf = append(buf, 0)
		}
	}
	return buf
}

// UpdateWhere applies vals to every object of set matching where, returning
// the number updated — the cost model's update query. The collection phase
// fans predicate evaluation out to ScanWorkers goroutines when configured
// (the matches are sorted back to physical order); the mutations themselves
// always run serially behind the writer lock.
func (db *DB) UpdateWhere(set string, where Pred, vals map[string]schema.Value) (int, error) {
	n, _, err := db.updateWhereTraced(nil, set, where, vals)
	return n, err
}

// UpdateWhereCtx is UpdateWhere under a context: cancellation is checked
// per record during collection and per object during the update pass. A
// cancelled operation rolls back (with a WAL) or stops between whole-object
// updates (without one).
func (db *DB) UpdateWhereCtx(ctx context.Context, set string, where Pred, vals map[string]schema.Value) (int, error) {
	n, _, err := db.updateWhereTraced(ctx, set, where, vals)
	return n, err
}

// UpdateWhereTraced is UpdateWhere returning the operation's completed
// obs.Record: collection reads, object updates, and all replication
// propagation the updates triggered, attributed to this one operation.
func (db *DB) UpdateWhereTraced(set string, where Pred, vals map[string]schema.Value) (int, obs.Record, error) {
	return db.updateWhereTraced(nil, set, where, vals)
}

func (db *DB) updateWhereTraced(ctx context.Context, set string, where Pred, vals map[string]schema.Value) (int, obs.Record, error) {
	if err := db.writable(); err != nil {
		return 0, obs.Record{}, err
	}
	tr := db.obs.Start(obs.KindUpdate, set, where.Expr)
	db.lockWriter(tr)
	db.writerTrace = tr
	var n int
	lsn, err := db.oneShot(tr, func() (uerr error) {
		n, uerr = db.updateWhere(ctx, set, where, vals, tr)
		return uerr
	})
	db.writerTrace = nil
	db.mu.Unlock()
	if err == nil {
		err = db.waitDurable(lsn, tr)
	}
	rec := db.obs.Finish(tr)
	if err != nil {
		return 0, rec, err
	}
	return n, rec, nil
}

func (db *DB) updateWhere(ctx context.Context, set string, where Pred, vals map[string]schema.Value, tr *obs.Trace) (int, error) {
	typ, err := db.cat.SetType(set)
	if err != nil {
		return 0, err
	}
	if err := db.flushDeferredFor(Query{Set: set, Where: &where}); err != nil {
		return 0, err
	}
	// Collect matching OIDs first (index or scan), then update; collecting
	// first keeps the scan stable under heap mutation.
	var matches []pagefile.OID
	collect := func(oid pagefile.OID, obj *schema.Object) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ok, err := db.evalPred(set, obj, &where, tr)
		if err != nil {
			return err
		}
		if ok {
			matches = append(matches, oid)
		}
		return nil
	}
	q := Query{Set: set, Where: &where}
	ran, err := db.tryIndexedAccess(q, typ, &Result{}, collect, tr)
	if err != nil {
		return 0, err
	}
	if !ran {
		file, err := db.SetFile(set)
		if err != nil {
			return 0, err
		}
		eval := func(oid pagefile.OID, obj *schema.Object) (Row, bool, error) {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return Row{}, false, err
				}
			}
			ok, err := db.evalPred(set, obj, &where, tr)
			return Row{OID: oid}, ok, err
		}
		emit := func(row Row) error {
			matches = append(matches, row.OID)
			return nil
		}
		if err := db.scanProcess(file, typ, eval, emit, tr); err != nil {
			return 0, err
		}
		if db.workers > 1 {
			// Parallel collection delivers matches in arbitrary order; sort
			// back to physical order so the update pass (and any forwarding
			// it causes) is deterministic regardless of worker count.
			sort.Slice(matches, func(i, j int) bool { return matches[i].Less(matches[j]) })
		}
	}
	for _, oid := range matches {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		if err := db.update(set, oid, vals); err != nil {
			return 0, err
		}
	}
	return len(matches), nil
}
