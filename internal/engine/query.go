package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/exodb/fieldrepl/internal/btree"
	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/heap"
	"github.com/exodb/fieldrepl/internal/obs"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/plan"
	"github.com/exodb/fieldrepl/internal/schema"
)

// Op is a comparison operator for predicates.
type Op int

// Comparison operators.
const (
	OpEQ Op = iota
	OpLT
	OpLE
	OpGT
	OpGE
	OpBetween // Value <= x <= Value2
)

func (o Op) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpBetween:
		return "between"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Pred is a predicate on a field or dotted path expression.
type Pred struct {
	Expr   string // "salary" or "dept.org.name"
	Op     Op
	Value  schema.Value
	Value2 schema.Value // upper bound for OpBetween
}

// Query is a retrieve statement: project the given field/path expressions
// from the objects of Set satisfying Where.
type Query struct {
	Set     string
	Project []string
	Where   *Pred
	// Filters are additional conjuncts applied after Where; they never
	// drive index selection.
	Filters []Pred
	// EmitOutput writes the result tuples to an output file (the cost
	// model's T), counting its page writes.
	EmitOutput bool
	// ForceScan disables index selection (for baseline measurements).
	ForceScan bool
	// NoFuse disables the per-query join-fusion memo, forcing record-at-a-time
	// functional joins (for baseline measurements).
	NoFuse bool
}

// Row is one result tuple.
type Row struct {
	OID    pagefile.OID
	Values []schema.Value
}

// Result is a query result.
type Result struct {
	Rows []Row
	// UsedIndex names the index chosen by the planner, if any.
	UsedIndex string
	// OutputPages is the page count of the generated output file when
	// EmitOutput was set.
	OutputPages uint32
	// Decision is the cost-based planner's record for this execution: chosen
	// access path, costed alternatives, operator pipeline, predicted pages.
	Decision *plan.Decision
}

// Query executes a retrieve. On a WAL-backed database, reads — including
// output-emitting queries — run under the shared lock against page-level
// snapshots, fully concurrent with writers and never charged any lock wait;
// only a query that must drain deferred propagation upgrades to the
// exclusive lock (the drain mutates derived state).
//
// With ScanWorkers > 1 a non-indexed query evaluates predicates and
// projections in parallel across page ranges; the result rows then arrive
// in no particular order (the sequential default preserves physical order).
func (db *DB) Query(q Query) (*Result, error) {
	res, _, err := db.QueryTraced(q)
	return res, err
}

// QueryCtx is Query under a context: cancellation is checked per record
// during scans and index ranges (including parallel scan workers), so a
// cancelled query stops fetching pages promptly. A nil ctx behaves like
// Query.
func (db *DB) QueryCtx(ctx context.Context, q Query) (*Result, error) {
	res, _, err := db.QueryTracedCtx(ctx, q)
	return res, err
}

// QueryTraced executes a retrieve like Query and additionally returns the
// query's completed obs.Record: its own page I/O (buffer hits/misses, store
// reads/writes, prefetches) attributed exactly to this query regardless of
// what ran concurrently, plus plan kind and wall time. This — not the
// Reset/IO-delta pattern, which counts every concurrent operation's pages —
// is the way to measure per-query I/O.
func (db *DB) QueryTraced(q Query) (*Result, obs.Record, error) {
	return db.QueryTracedCtx(nil, q)
}

// QueryTracedCtx is the canonical retrieve implementation: every other query
// entry point (Query, QueryCtx, QueryTraced, ExplainQuery, the public API's
// Plan.Run) is a thin wrapper over it. It plans, executes under the regime
// runQuery selects, and returns the result — carrying the planner's Decision
// — plus the operation's completed trace record.
func (db *DB) QueryTracedCtx(ctx context.Context, q Query) (*Result, obs.Record, error) {
	tr := db.obs.Start(obs.KindQuery, q.Set, queryDetail(q))
	tr.SetOrigin(obs.OriginFrom(ctx))
	res, err := db.runQuery(ctx, q, tr)
	rec := db.obs.Finish(tr)
	return res, rec, err
}

// queryDetail summarizes the qualifying predicate for trace records.
func queryDetail(q Query) string {
	if q.Where == nil {
		return ""
	}
	return q.Where.Expr
}

// runQuery acquires the right lock mode for q and executes it, charging I/O
// to tr. Three regimes:
//
//   - Draining queries (pending deferred propagation on a resolved path)
//     mutate derived state and run coarsely: exclusive lock, implicit
//     transaction. So do emitting queries on a no-WAL database (the legacy
//     regime, where only the exclusive lock protects the scratch registry).
//   - Everything else on a WAL-backed database runs in a read session under
//     the shared lock: snapshot page views, no set locks, no lock wait. An
//     emitting query's scratch file is plain-mode (session-local, unlogged)
//     and its registration is serialized by fsMu.
//   - Everything else on a no-WAL database reads plain views under the
//     shared lock, exactly the legacy read path.
//
// A deferred propagation enqueued by a writer that commits while a read
// session is already executing is not drained by that query — the reader
// observes the committed terminal values with the hidden copies still stale,
// which is exactly the deferred path's published state; the next query
// drains it.
func (db *DB) runQuery(ctx context.Context, q Query, tr *obs.Trace) (*Result, error) {
	db.mu.RLock()
	coarse := db.hasDeferredFor(q) || (q.EmitOutput && db.wal == nil)
	if coarse {
		db.mu.RUnlock()
		// Both coarse branches are writes: emitting an output file creates
		// an unlogged scratch file (which would desynchronize file IDs with
		// the primary), and draining deferred propagation mutates derived
		// state the primary will also stream. A follower refuses rather than
		// diverging.
		if err := db.writable(); err != nil {
			return nil, err
		}
		var res *Result
		// The coarse branch runs as an implicit transaction: a deferred
		// drain that fails partway rolls back instead of leaving derived
		// state half-propagated.
		lsn, err := db.coarseShot(tr, func(s *sess) (qerr error) {
			res, qerr = s.query(ctx, q, true)
			return qerr
		})
		if err == nil {
			err = db.waitDurable(lsn, tr)
		}
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	defer db.mu.RUnlock()
	if q.EmitOutput {
		// Scratch files desynchronize follower file IDs; refuse like the
		// coarse branch does.
		if err := db.writable(); err != nil {
			return nil, err
		}
	}
	return db.readSess(tr).query(ctx, q, false)
}

// query executes q through the session's views. drain says whether to flush
// pending deferred propagation for the resolved paths first — true on every
// writing path (coarse query, fine transaction on an in-footprint set),
// false in pure read sessions (runQuery routes queries that would need a
// drain to the coarse path).
func (s *sess) query(ctx context.Context, q Query, drain bool) (*Result, error) {
	typ, err := s.db.cat.SetType(q.Set)
	if err != nil {
		return nil, err
	}
	if drain {
		if err := s.flushDeferredFor(q); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	// Plan after any drain (the drain can grow files and rewrite replicated
	// state the statistics should reflect).
	decision, ix := s.planQuery(q)
	res.Decision = decision
	// Advisor metadata: the planner's page prediction (paired with observed
	// pages at Finish) and the replicated-path keys the query reads through.
	s.tr.SetPredictedPages(decision.PredictedPages)
	s.tr.SetPaths(s.pathKeysForQuery(q))
	if !q.NoFuse {
		// Join-fusion memo for the query's functional joins; strictly
		// read-only state, discarded with the query.
		s.fuse = newFuseState()
		defer func() { s.fuse = nil }()
	}

	var out *heap.File
	if q.EmitOutput {
		out, err = s.newScratch()
		if err != nil {
			return nil, err
		}
	}

	// eval applies the predicates and builds the projected row; it touches
	// only read paths (pool, catalog, replicated state) and is safe to call
	// from parallel scan workers. emit accumulates a matching row and is
	// serialized by the caller.
	eval := func(oid pagefile.OID, obj *schema.Object) (Row, bool, error) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return Row{}, false, err
			}
		}
		if q.Where != nil {
			okRow, err := s.evalPred(q.Set, obj, q.Where)
			if err != nil || !okRow {
				return Row{}, false, err
			}
		}
		for i := range q.Filters {
			okRow, err := s.evalPred(q.Set, obj, &q.Filters[i])
			if err != nil || !okRow {
				return Row{}, false, err
			}
		}
		row := Row{OID: oid, Values: make([]schema.Value, len(q.Project))}
		for i, expr := range q.Project {
			v, err := s.resolveExpr(q.Set, obj, expr)
			if err != nil {
				return Row{}, false, err
			}
			row.Values[i] = v
		}
		return row, true, nil
	}
	emit := func(row Row) error {
		res.Rows = append(res.Rows, row)
		if out != nil {
			if _, err := out.Insert(encodeRow(row)); err != nil {
				return err
			}
		}
		return nil
	}
	process := func(oid pagefile.OID, obj *schema.Object) error {
		row, ok, err := eval(oid, obj)
		if err != nil || !ok {
			return err
		}
		return emit(row)
	}

	ran := false
	if decision.Access == plan.IndexRange && ix != nil {
		ran, err = s.indexedAccess(ctx, q, typ, ix, res, process)
		if err != nil {
			return nil, err
		}
	}
	if !ran {
		file, err := s.SetFile(q.Set)
		if err != nil {
			return nil, err
		}
		if err := s.scanProcess(file, typ, eval, emit); err != nil {
			return nil, err
		}
	}
	if out != nil {
		res.OutputPages, err = out.NumPages()
		if err != nil {
			return nil, err
		}
	}
	s.tr.SetRows(int64(len(res.Rows)))
	return res, nil
}

// scanProcess drives eval over every record of file — fanned out to
// ScanWorkers goroutines when configured — and feeds matches to emit, which
// is always called serially (under a mutex in the parallel case, so result
// accumulation and output-file inserts stay single-writer). Parallel scan
// workers share file's trace (the counters are atomic), so the whole scan's
// page I/O merges into the owning operation's trace.
func (s *sess) scanProcess(file *heap.File, typ *schema.Type, eval func(pagefile.OID, *schema.Object) (Row, bool, error), emit func(Row) error) error {
	if s.db.workers > 1 {
		s.tr.SetPlan("scan-parallel")
		var mu sync.Mutex
		return file.ScanParallel(s.db.workers, func(oid pagefile.OID, payload []byte) error {
			obj, err := schema.Decode(typ, payload)
			if err != nil {
				return err
			}
			row, ok, err := eval(oid, obj)
			if err != nil || !ok {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			return emit(row)
		})
	}
	s.tr.SetPlan("scan")
	return file.Scan(func(oid pagefile.OID, payload []byte) error {
		obj, err := schema.Decode(typ, payload)
		if err != nil {
			return err
		}
		row, ok, err := eval(oid, obj)
		if err != nil || !ok {
			return err
		}
		return emit(row)
	})
}

// deferredPathsFor returns the deferred replication paths with pending
// propagations that the query's expressions resolve through. Safe under
// either lock mode: the catalog is read-only here and the pending queue is
// internally synchronized.
func (db *DB) deferredPathsFor(q Query) []*catalog.Path {
	exprs := append([]string(nil), q.Project...)
	if q.Where != nil {
		exprs = append(exprs, q.Where.Expr)
	}
	for _, f := range q.Filters {
		exprs = append(exprs, f.Expr)
	}
	var paths []*catalog.Path
	add := func(p *catalog.Path) {
		for _, q := range paths {
			if q == p {
				return
			}
		}
		paths = append(paths, p)
	}
	for _, expr := range exprs {
		refs, field := splitExpr(expr)
		if len(refs) == 0 {
			continue
		}
		spec := catalog.PathSpec{Source: q.Set, Refs: refs, Field: field}
		if p, ok := db.cat.FindPath(spec, catalog.InPlace); ok && p.Deferred && db.mgr.HasPending(p) {
			add(p)
		}
		// A deferred ref-replicating prefix (§3.3.3) may also serve this
		// expression; those count too.
		for k := len(refs); k >= 2; k-- {
			prefixSpec := catalog.PathSpec{Source: q.Set, Refs: refs[:k-1], Field: refs[k-1]}
			if p, ok := db.cat.FindPath(prefixSpec, catalog.InPlace); ok && p.Deferred && db.mgr.HasPending(p) {
				add(p)
			}
		}
	}
	return paths
}

// hasDeferredFor reports whether the query would have to drain deferred
// propagation (and therefore needs the exclusive lock or an in-footprint
// fine transaction).
func (db *DB) hasDeferredFor(q Query) bool { return len(db.deferredPathsFor(q)) > 0 }

// flushDeferredFor drains deferred propagation for every replication path
// the query's expressions resolve through ("not propagated until needed",
// paper §8): the first read after a burst of terminal updates pays one
// propagation per distinct updated terminal.
func (s *sess) flushDeferredFor(q Query) error {
	for _, p := range s.db.deferredPathsFor(q) {
		if err := s.manager().FlushPath(p); err != nil {
			return err
		}
	}
	return nil
}

// idxEpochRetries bounds how many times a snapshot index traversal re-runs
// when concurrent commits keep republishing the index file mid-walk before
// falling back to serializing behind the set's lock.
const idxEpochRetries = 4

// indexedAccess drives process over the records qualified by the planner's
// chosen index range, in key order. It reports false when the session has no
// view of the index (the caller falls back to a scan).
//
// Execution is page-batched: the qualifying OIDs are collected from the leaf
// chain first (whose pages the iterator itself reads ahead), their distinct
// heap pages are then warmed in sorted vectored batches through the
// scan-readahead machinery, and the objects are processed from the pool —
// the index-range analogue of the heap scan's page-at-a-time evaluation.
//
// Through a snapshot view a B-tree descent is only page-atomic, and a commit
// landing between two page reads can tear the traversal (a split moves keys
// the walk then misses). Snapshot traversals therefore validate the collected
// OIDs against the index file's commit epoch, retrying on change; if the
// epoch keeps moving, a read session serializes briefly behind the set's
// lock (charged as lock wait — the pathological case), and a fine session
// escalates to exclusive mode instead of taking set locks out of footprint
// order.
func (s *sess) indexedAccess(ctx context.Context, q Query, typ *schema.Type, ix *catalog.Index, res *Result, process func(pagefile.OID, *schema.Object) error) (bool, error) {
	tree, snapshot, ok := s.treeView(ix.Name)
	if !ok {
		return false, nil
	}
	res.UsedIndex = ix.Name
	s.tr.SetPlan("index:" + ix.Name)
	lo, hi := keyRange(q.Where)

	var oids []pagefile.OID
	var err error
	if snapshot {
		oids, err = s.snapshotIndexRange(ctx, q.Set, ix, tree, lo, hi)
	} else {
		err = tree.Range(lo, hi, func(_ btree.Key, oid pagefile.OID) bool {
			oids = append(oids, oid)
			return true
		})
	}
	if err != nil {
		return true, err
	}
	s.prefetchOIDPages(oids)
	for _, oid := range oids {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return true, err
			}
		}
		obj, err := s.readObject(oid, typ)
		if err != nil {
			return true, err
		}
		// The predicate is rechecked on the resolved value: string keys are
		// prefix-truncated and range bounds may be exclusive.
		if err := process(oid, obj); err != nil {
			return true, err
		}
	}
	return true, nil
}

// prefetchOIDPages warms the distinct heap pages behind a batch of qualifying
// OIDs, turning the index fetch's scattered single-page reads into sorted
// vectored batches. Plain-mode views only — capture and snapshot views read
// page-at-a-time for the same reason heap.Scan disables readahead there
// (prefetch installs raw frames, which must not race concurrent write-backs)
// — and only with readahead configured, preserving the paper-figure
// invariant that readahead off means zero prefetches and misses equal store
// reads.
func (s *sess) prefetchOIDPages(oids []pagefile.OID) {
	if len(oids) < 2 || s.db.pool.Readahead() <= 0 {
		return
	}
	fid := oids[0].File
	if !s.plainHeap(fid) {
		return
	}
	pages := make([]uint32, 0, len(oids))
	for _, oid := range oids {
		if oid.File == fid {
			pages = append(pages, oid.Page)
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	dedup := pages[:1]
	for _, p := range pages[1:] {
		if p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	s.db.pool.PrefetchPagesT(fid, dedup, s.tr)
}

// plainHeap mirrors heapFor's mode selection: true when the session reads
// fid through a plain (directly framed, write-back-free) view.
func (s *sess) plainHeap(fid pagefile.FileID) bool {
	switch s.mode {
	case sessCoarse:
		return true
	case sessFine:
		return !s.fp.files[fid] && s.db.wal == nil
	default:
		return s.db.wal == nil
	}
}

// snapshotIndexRange collects the OIDs in [lo, hi] from a snapshot tree
// view, validating the traversal against the index file's commit epoch. A
// traversal error with a changed epoch counts as torn (a mid-walk commit can
// route the descent through a page image that no longer parses) and retries
// like a key tear would.
func (s *sess) snapshotIndexRange(ctx context.Context, set string, ix *catalog.Index, tree *btree.Tree, lo, hi btree.Key) ([]pagefile.OID, error) {
	pool := s.db.pool
	var oids []pagefile.OID
	collect := func() error {
		oids = oids[:0]
		return tree.Range(lo, hi, func(_ btree.Key, oid pagefile.OID) bool {
			oids = append(oids, oid)
			return true
		})
	}
	for attempt := 0; attempt <= idxEpochRetries; attempt++ {
		e0 := pool.FileEpoch(ix.FileID)
		err := collect()
		if pool.FileEpoch(ix.FileID) == e0 {
			if err != nil {
				return nil, err
			}
			return oids, nil
		}
		// Torn: a commit republished index pages mid-walk; discard and retry.
	}
	if s.mode == sessFine {
		// Taking set locks outside the declared footprint here could deadlock
		// against a writer acquiring its sorted footprint; escalate instead.
		return nil, fmt.Errorf("%w: index %s keeps changing under snapshot traversal", errNeedsCoarse, ix.Name)
	}
	// Read session: serialize briefly behind the set's writers. The set lock
	// covers the index file (index trees are part of every footprint built
	// over their set), so the traversal is stable while we hold it.
	if err := s.db.setLocks.acquire(ctx, []string{set}, s.tr); err != nil {
		return nil, err
	}
	defer s.db.setLocks.release([]string{set})
	if err := collect(); err != nil {
		return nil, err
	}
	return oids, nil
}

// keyRange computes the inclusive key range covering a predicate; exactness
// comes from the recheck.
func keyRange(p *Pred) (btree.Key, btree.Key) {
	k := keyFor(p.Value)
	switch p.Op {
	case OpEQ:
		return k, k
	case OpLT, OpLE:
		return btree.MinKey, k
	case OpGT, OpGE:
		return k, btree.MaxKey
	case OpBetween:
		return k, keyFor(p.Value2)
	default:
		return btree.MinKey, btree.MaxKey
	}
}

func splitExpr(expr string) (refs []string, field string) {
	parts := strings.Split(expr, ".")
	return parts[:len(parts)-1], parts[len(parts)-1]
}

// evalPred evaluates a predicate against an object, resolving path
// expressions through replicated data when possible and charging any reads
// to the session's trace.
func (s *sess) evalPred(set string, obj *schema.Object, p *Pred) (bool, error) {
	v, err := s.resolveExpr(set, obj, p.Expr)
	if err != nil {
		return false, err
	}
	c, err := compareValues(v, p.Value)
	if err != nil {
		return false, err
	}
	switch p.Op {
	case OpEQ:
		return c == 0, nil
	case OpLT:
		return c < 0, nil
	case OpLE:
		return c <= 0, nil
	case OpGT:
		return c > 0, nil
	case OpGE:
		return c >= 0, nil
	case OpBetween:
		if c < 0 {
			return false, nil
		}
		c2, err := compareValues(v, p.Value2)
		if err != nil {
			return false, err
		}
		return c2 <= 0, nil
	default:
		return false, fmt.Errorf("engine: unknown operator %v", p.Op)
	}
}

func compareValues(a, b schema.Value) (int, error) {
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("engine: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch a.Kind {
	case schema.KindInt:
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	case schema.KindFloat:
		switch {
		case a.F < b.F:
			return -1, nil
		case a.F > b.F:
			return 1, nil
		}
		return 0, nil
	case schema.KindString:
		return strings.Compare(a.S, b.S), nil
	default:
		return 0, fmt.Errorf("engine: cannot compare %s values", a.Kind)
	}
}

// resolveExpr resolves a projection/predicate expression against an object:
// a plain field directly; a dotted path through, in order of preference,
//
//  1. an exactly matching in-place replication path (zero extra I/O),
//  2. an exactly matching separate replication path (one S′ fetch),
//  3. a replicated reference attribute covering a prefix (§3.3.3 path
//     collapsing), continuing with a shortened functional join,
//  4. a full functional join.
func (s *sess) resolveExpr(set string, obj *schema.Object, expr string) (schema.Value, error) {
	refs, field := splitExpr(expr)
	if len(refs) == 0 {
		v, ok := obj.Get(field)
		if !ok {
			return schema.Value{}, fmt.Errorf("engine: set %s has no field %q", set, field)
		}
		return v, nil
	}
	// 1-2. Exact replicated path.
	spec := catalog.PathSpec{Source: set, Refs: refs, Field: field}
	if p, ok := s.db.cat.FindPath(spec, catalog.InPlace); ok {
		return s.readReplicatedByName(p, obj, field)
	}
	if p, ok := s.db.cat.FindPath(spec, catalog.Separate); ok {
		return s.readReplicatedByName(p, obj, field)
	}
	// 3. Longest replicated reference prefix (collapsing).
	for k := len(refs) - 1; k >= 1; k-- {
		prefixSpec := catalog.PathSpec{Source: set, Refs: refs[:k], Field: refs[k]}
		p, ok := s.db.cat.FindPath(prefixSpec, catalog.InPlace)
		if !ok {
			continue
		}
		hidden, err := s.readReplicatedByName(p, obj, refs[k])
		if err != nil {
			return schema.Value{}, err
		}
		if hidden.Kind != schema.KindRef {
			continue
		}
		// Jump to position k+1 and walk the rest functionally. The walk from
		// a given target is the same for every source record that shares it,
		// so the fused terminal memo applies here too.
		termField, _ := p.TerminalType().Field(p.Spec.Field)
		startType, ok := s.db.cat.TypeByName(termField.RefType)
		if !ok {
			return schema.Value{}, fmt.Errorf("engine: unknown type %s", termField.RefType)
		}
		if f := s.fuse; f != nil {
			tk := termKey{oid: hidden.R, expr: expr}
			if v, hit := f.term(tk); hit {
				return v, nil
			}
			v, err := s.walkFunctional(startType, hidden.R, refs[k+1:], field)
			if err == nil {
				f.setTerm(tk, v)
			}
			return v, err
		}
		return s.walkFunctional(startType, hidden.R, refs[k+1:], field)
	}
	// 4. Full functional join, fused when the memo is installed: the terminal
	// value reached from a given first-level target is the same for every
	// source record referencing it.
	typ, err := s.db.cat.SetType(set)
	if err != nil {
		return schema.Value{}, err
	}
	if f := s.fuse; f != nil {
		if v0, ok := obj.Get(refs[0]); ok && v0.Kind == schema.KindRef {
			k := termKey{oid: v0.R, expr: expr}
			if v, hit := f.term(k); hit {
				return v, nil
			}
			v, err := s.walkObjectPath(typ, obj, refs, field)
			if err == nil {
				f.setTerm(k, v)
			}
			return v, err
		}
	}
	return s.walkObjectPath(typ, obj, refs, field)
}

// walkFunctional follows refs starting from an OID of type startType.
func (s *sess) walkFunctional(startType *schema.Type, start pagefile.OID, refs []string, field string) (schema.Value, error) {
	if start.IsNil() {
		return schema.Value{}, nil
	}
	obj, err := s.readObjectFused(start, startType)
	if err != nil {
		return schema.Value{}, err
	}
	return s.walkObjectPath(startType, obj, refs, field)
}

// walkObjectPath performs the functional joins of a path expression,
// reading one object per level.
func (s *sess) walkObjectPath(typ *schema.Type, obj *schema.Object, refs []string, field string) (schema.Value, error) {
	cur := obj
	curType := typ
	for _, r := range refs {
		f, ok := curType.Field(r)
		if !ok || f.Kind != schema.KindRef {
			return schema.Value{}, fmt.Errorf("engine: %s has no reference attribute %q", curType.Name, r)
		}
		v, _ := cur.Get(r)
		if v.R.IsNil() {
			// Broken chain: zero value of the terminal field if resolvable,
			// else an invalid value.
			return schema.Value{}, nil
		}
		nextType, ok := s.db.cat.TypeByName(f.RefType)
		if !ok {
			return schema.Value{}, fmt.Errorf("engine: unknown type %s", f.RefType)
		}
		next, err := s.readObjectFused(v.R, nextType)
		if err != nil {
			return schema.Value{}, err
		}
		cur, curType = next, nextType
	}
	v, ok := cur.Get(field)
	if !ok {
		return schema.Value{}, fmt.Errorf("engine: %s has no field %q", curType.Name, field)
	}
	return v, nil
}

// readReplicatedByName resolves a replicated field by name on path p.
func (s *sess) readReplicatedByName(p *catalog.Path, obj *schema.Object, field string) (schema.Value, error) {
	fields := p.Fields
	if p.Strategy == catalog.Separate {
		fields = p.Group.Fields
	}
	for _, f := range fields {
		if f.Name == field {
			return s.manager().ReadReplicated(p, obj, f.Idx, s.tr)
		}
	}
	return schema.Value{}, fmt.Errorf("engine: path %s does not replicate %q", p.Spec, field)
}

// encodeRow serializes a result tuple for the output file.
func encodeRow(r Row) []byte {
	buf := r.OID.AppendTo(nil)
	buf = append(buf, byte(len(r.Values)))
	for _, v := range r.Values {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case schema.KindInt:
			for i := 0; i < 8; i++ {
				buf = append(buf, byte(uint64(v.I)>>(8*i)))
			}
		case schema.KindFloat:
			buf = append(buf, []byte(fmt.Sprintf("%g", v.F))...)
			buf = append(buf, 0)
		case schema.KindString:
			buf = append(buf, byte(len(v.S)), byte(len(v.S)>>8))
			buf = append(buf, v.S...)
		case schema.KindRef:
			buf = v.R.AppendTo(buf)
		default:
			buf = append(buf, 0)
		}
	}
	return buf
}

// UpdateWhere applies vals to every object of set matching where, returning
// the number updated — the cost model's update query. The collection phase
// fans predicate evaluation out to ScanWorkers goroutines when configured
// (the matches are sorted back to physical order); the mutations themselves
// run serially within the statement, under the per-set locks of the set's
// footprint (WAL) or the exclusive lock (no WAL).
func (db *DB) UpdateWhere(set string, where Pred, vals map[string]schema.Value) (int, error) {
	n, _, err := db.updateWhereTraced(nil, set, where, vals)
	return n, err
}

// UpdateWhereCtx is UpdateWhere under a context: cancellation is checked
// per record during collection and per object during the update pass. A
// cancelled operation rolls back (with a WAL) or stops between whole-object
// updates (without one).
func (db *DB) UpdateWhereCtx(ctx context.Context, set string, where Pred, vals map[string]schema.Value) (int, error) {
	n, _, err := db.updateWhereTraced(ctx, set, where, vals)
	return n, err
}

// UpdateWhereTraced is UpdateWhere returning the operation's completed
// obs.Record: collection reads, object updates, and all replication
// propagation the updates triggered, attributed to this one operation.
func (db *DB) UpdateWhereTraced(set string, where Pred, vals map[string]schema.Value) (int, obs.Record, error) {
	return db.updateWhereTraced(nil, set, where, vals)
}

func (db *DB) updateWhereTraced(ctx context.Context, set string, where Pred, vals map[string]schema.Value) (int, obs.Record, error) {
	n, rec, _, err := db.updateWhereDecided(ctx, set, where, vals)
	return n, rec, err
}

// updateWhereDecided is the canonical update-query implementation: every
// UpdateWhere entry point wraps it. It additionally returns the collection
// phase's plan decision for Explain.
func (db *DB) updateWhereDecided(ctx context.Context, set string, where Pred, vals map[string]schema.Value) (int, obs.Record, *plan.Decision, error) {
	if err := db.writable(); err != nil {
		return 0, obs.Record{}, nil, err
	}
	tr := db.obs.Start(obs.KindUpdate, set, where.Expr)
	tr.SetOrigin(obs.OriginFrom(ctx))
	var n int
	var d *plan.Decision
	lsn, err := db.writeShot(ctx, tr, []string{set}, func(s *sess) (uerr error) {
		n, d, uerr = s.updateWhere(ctx, set, where, vals)
		return uerr
	})
	if err == nil {
		err = db.waitDurable(lsn, tr)
	}
	rec := db.obs.Finish(tr)
	if err != nil {
		return 0, rec, d, err
	}
	return n, rec, d, nil
}

func (s *sess) updateWhere(ctx context.Context, set string, where Pred, vals map[string]schema.Value) (int, *plan.Decision, error) {
	typ, err := s.db.cat.SetType(set)
	if err != nil {
		return 0, nil, err
	}
	if err := s.flushDeferredFor(Query{Set: set, Where: &where}); err != nil {
		return 0, nil, err
	}
	q := Query{Set: set, Where: &where}
	decision, ix := s.planQuery(q)
	// Advisor metadata: prediction for drift tracking, written fields and the
	// replication paths the update propagates into for the workload mix.
	// Idempotent (last call wins) under the fine→coarse retry.
	s.tr.SetPredictedPages(decision.PredictedPages)
	s.stampUpdateMeta(typ, vals)
	// Collect matching OIDs first (index or scan), then update; collecting
	// first keeps the scan stable under heap mutation. No fusion memo here:
	// the mutation pass would invalidate it mid-statement.
	var matches []pagefile.OID
	collect := func(oid pagefile.OID, obj *schema.Object) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ok, err := s.evalPred(set, obj, &where)
		if err != nil {
			return err
		}
		if ok {
			matches = append(matches, oid)
		}
		return nil
	}
	ran := false
	if decision.Access == plan.IndexRange && ix != nil {
		ran, err = s.indexedAccess(ctx, q, typ, ix, &Result{}, collect)
		if err != nil {
			return 0, decision, err
		}
	}
	if !ran {
		file, err := s.SetFile(set)
		if err != nil {
			return 0, decision, err
		}
		eval := func(oid pagefile.OID, obj *schema.Object) (Row, bool, error) {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return Row{}, false, err
				}
			}
			ok, err := s.evalPred(set, obj, &where)
			return Row{OID: oid}, ok, err
		}
		emit := func(row Row) error {
			matches = append(matches, row.OID)
			return nil
		}
		if err := s.scanProcess(file, typ, eval, emit); err != nil {
			return 0, decision, err
		}
		if s.db.workers > 1 {
			// Parallel collection delivers matches in arbitrary order; sort
			// back to physical order so the update pass (and any forwarding
			// it causes) is deterministic regardless of worker count.
			sort.Slice(matches, func(i, j int) bool { return matches[i].Less(matches[j]) })
		}
	}
	for _, oid := range matches {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, decision, err
			}
		}
		if err := s.update(set, oid, vals); err != nil {
			return 0, decision, err
		}
	}
	s.tr.SetRows(int64(len(matches)))
	return len(matches), decision, nil
}
