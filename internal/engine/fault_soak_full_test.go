//go:build soak

package engine

// faultSoakStride under -tags soak: every single operation index of the
// calibration run gets its own faulted run.
const faultSoakStride = 1
