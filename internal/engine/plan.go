package engine

import (
	"fmt"
	"math"

	"github.com/exodb/fieldrepl/internal/btree"
	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/plan"
	"github.com/exodb/fieldrepl/internal/schema"
)

// This file feeds the cost-based planner (internal/plan) from live state:
// heap page counts from store metadata, cardinalities from B+tree metadata
// when the set carries any index, path-resolution strategies from the
// catalog. Statistics gathering costs no heap I/O — at most a couple of
// index meta-page pins, which are buffer hits after the first query.

// PlanQuery runs the planner for q without executing it, returning the
// decision Explain renders: the chosen access path, every costed
// alternative, and the operator pipeline. It takes only the shared lock.
func (db *DB) PlanQuery(q Query) (*plan.Decision, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, err := db.cat.SetType(q.Set); err != nil {
		return nil, err
	}
	d, _ := db.readSess(nil).planQuery(q)
	return d, nil
}

// PlanUpdateWhere plans the collection phase of an UpdateWhere without
// executing it.
func (db *DB) PlanUpdateWhere(set string, where Pred) (*plan.Decision, error) {
	return db.PlanQuery(Query{Set: set, Where: &where})
}

// planQuery gathers statistics and costs q's access paths. It returns the
// decision and, when the decision is an index range, the catalog index to
// drive it with. Callers hold the session's locks.
func (s *sess) planQuery(q Query) (*plan.Decision, *catalog.Index) {
	in := plan.Input{
		Source:    s.setStats(q.Set),
		ForceScan: q.ForceScan,
		Workers:   s.db.workers,
	}

	var ix *catalog.Index
	if q.Where != nil {
		refs, field := splitExpr(q.Where.Expr)
		var found bool
		if len(refs) == 0 {
			ix, found = s.db.cat.IndexFor(q.Set, field)
		} else {
			ix, found = s.db.cat.PathIndexFor(q.Set, refs, field)
		}
		if !found {
			ix = nil
		}
		in.Where = s.predInfo(q.Where, in.Source)
		if ix != nil {
			in.Index = s.indexInfo(ix)
			if in.Index == nil {
				ix = nil
			}
		}
		if ix != nil && q.Where.Op != OpEQ {
			// With an index over the predicate we know the key domain; an
			// edge-descent gives its bounds and the range interpolates to a
			// real selectivity instead of the System R constant.
			if sel, ok := s.interpolateRange(q.Where, ix); ok {
				if sel < 1/in.Source.Card {
					sel = 1 / in.Source.Card
				}
				if sel > 1 {
					sel = 1
				}
				in.Where.Selectivity = sel
			}
		}
	}

	in.Paths = s.pathExprs(q, ix)
	if q.EmitOutput {
		est := in.Source.Card
		if in.Where != nil {
			est = in.Where.Selectivity * in.Source.Card
		}
		per := in.Source.PerPage
		if per < 1 {
			per = 1
		}
		in.EmitPages = math.Ceil(est / per)
		if in.EmitPages < 1 {
			in.EmitPages = 1
		}
	}

	d := plan.Choose(in)
	if d.Access != plan.IndexRange {
		ix = nil
	}
	return d, ix
}

// setStats measures set's physical statistics. Page counts come from store
// metadata (not page I/O); the cardinality is exact — one meta-page pin —
// whenever the set carries any index, and estimated from the schema's field
// widths otherwise.
func (s *sess) setStats(set string) plan.SetStats {
	st := plan.SetStats{Set: set, Pages: 1, Card: 1, PerPage: 1}
	cs, ok := s.db.cat.SetByName(set)
	if !ok {
		return st
	}
	if np, err := s.db.store.NumPages(cs.FileID); err == nil && np > 0 {
		st.Pages = float64(np)
	}
	for _, ix := range s.db.cat.IndexesOn(set) {
		tree, ok := s.treeFor(ix.Name)
		if !ok {
			continue
		}
		if n, err := tree.Count(); err == nil {
			st.Card = float64(n)
			st.Exact = true
			break
		}
	}
	if !st.Exact {
		per := 1.0
		if typ, err := s.db.cat.SetType(set); err == nil {
			per = estPerPage(typ)
		}
		st.Card = st.Pages * per
	}
	if st.Card < 1 {
		st.Card = 1
	}
	st.PerPage = st.Card / st.Pages
	if st.PerPage < 1 {
		st.PerPage = 1
	}
	return st
}

// objBytes estimates one object's stored size from the schema's field widths.
// Shared by the planner's records-per-page estimate and the advisor's live
// cost-model parameters (RSize/SSize).
func objBytes(typ *schema.Type) float64 {
	size := 24.0 // object header + slot overhead
	for _, f := range typ.Fields {
		size += fieldBytes(f.Kind)
	}
	return size
}

// fieldBytes estimates one field's stored width by kind.
func fieldBytes(k schema.Kind) float64 {
	switch k {
	case schema.KindInt, schema.KindFloat:
		return 8
	case schema.KindString:
		return 16 // guess: short strings dominate
	case schema.KindRef:
		return pagefile.OIDSize
	}
	return 8
}

// estPerPage estimates records per page from the schema's field widths, for
// sets with no index to count exactly.
func estPerPage(typ *schema.Type) float64 {
	per := math.Floor(float64(pagefile.UserBytes) / objBytes(typ))
	if per < 1 {
		per = 1
	}
	return per
}

// predInfo estimates the qualifying predicate's selectivity: exact-match
// 1/card, open ranges 1/3, between 1/4 — clamped to [1/card, 1]. Without
// value distributions these are the classic System R constants.
func (s *sess) predInfo(p *Pred, st plan.SetStats) *plan.PredInfo {
	var sel float64
	switch p.Op {
	case OpEQ:
		sel = 1 / st.Card
	case OpBetween:
		sel = 0.25
	default:
		sel = 1.0 / 3
	}
	if sel < 1/st.Card {
		sel = 1 / st.Card
	}
	if sel > 1 {
		sel = 1
	}
	detail := p.Expr + " " + p.Op.String() + " " + valueStr(p.Value)
	if p.Op == OpBetween {
		detail += " and " + valueStr(p.Value2)
	}
	return &plan.PredInfo{Expr: p.Expr, Op: p.Op.String(), Detail: detail, Selectivity: sel}
}

// interpolateRange estimates a range predicate's selectivity by uniform
// interpolation over the index's measured key domain [min, max]. Reports
// false for key kinds without a numeric interpretation (strings) or when the
// tree is empty.
func (s *sess) interpolateRange(p *Pred, ix *catalog.Index) (float64, bool) {
	tree, _, ok := s.treeView(ix.Name)
	if !ok {
		return 0, false
	}
	loK, hiK, nonEmpty, err := tree.Bounds()
	if err != nil || !nonEmpty {
		return 0, false
	}
	var mn, mx, v1, v2 float64
	switch ix.KeyKind {
	case schema.KindInt:
		if p.Value.Kind != schema.KindInt {
			return 0, false
		}
		mn, mx = float64(btree.Int64FromKey(loK)), float64(btree.Int64FromKey(hiK))
		v1 = float64(p.Value.I)
		if p.Op == OpBetween {
			if p.Value2.Kind != schema.KindInt {
				return 0, false
			}
			v2 = float64(p.Value2.I)
		}
	case schema.KindFloat:
		if p.Value.Kind != schema.KindFloat {
			return 0, false
		}
		mn, mx = btree.Float64FromKey(loK), btree.Float64FromKey(hiK)
		v1 = p.Value.F
		if p.Op == OpBetween {
			if p.Value2.Kind != schema.KindFloat {
				return 0, false
			}
			v2 = p.Value2.F
		}
	default:
		return 0, false
	}
	span := mx - mn
	if span <= 0 {
		return 1, true
	}
	frac := func(x float64) float64 {
		pos := (x - mn) / span
		if pos < 0 {
			pos = 0
		}
		if pos > 1 {
			pos = 1
		}
		return pos
	}
	switch p.Op {
	case OpLT, OpLE:
		return frac(v1), true
	case OpGT, OpGE:
		return 1 - frac(v1), true
	case OpBetween:
		sel := frac(v2) - frac(v1)
		if sel < 0 {
			sel = 0
		}
		return sel, true
	default:
		return 0, false
	}
}

func valueStr(v schema.Value) string {
	switch v.Kind {
	case schema.KindInt:
		return fmt.Sprintf("%d", v.I)
	case schema.KindFloat:
		return fmt.Sprintf("%g", v.F)
	case schema.KindString:
		return fmt.Sprintf("%q", v.S)
	case schema.KindRef:
		return v.R.String()
	default:
		return "?"
	}
}

// indexInfo measures the candidate index: height and entry count from its
// meta page, leaf page count from the file size minus the meta page and an
// internal-node estimate (one per level above the leaves — fanouts are wide,
// so the internal layers above the first round to a page or two at most).
func (s *sess) indexInfo(ix *catalog.Index) *plan.IndexInfo {
	tree, _, ok := s.treeView(ix.Name)
	if !ok {
		return nil
	}
	h, err := tree.Height()
	if err != nil || h < 1 {
		h = 1
	}
	info := &plan.IndexInfo{Name: ix.Name, Expr: ix.Field, Clustered: ix.Clustered, Height: float64(h)}
	if len(ix.Path) > 0 {
		info.Expr = joinPath(ix.Path, ix.Field)
	}
	if n, err := tree.Count(); err == nil {
		info.Entries = float64(n)
	}
	np, err := s.db.store.NumPages(ix.FileID)
	if err != nil || np == 0 {
		np = uint32(h) + 1
	}
	info.LeafPages = float64(np) - 1 - float64(h-1)
	if info.LeafPages < 1 {
		info.LeafPages = 1
	}
	return info
}

func joinPath(refs []string, field string) string {
	out := ""
	for _, r := range refs {
		out += r + "."
	}
	return out + field
}

// pathExprs classifies every dotted path expression in q by how resolveExpr
// will serve it: exact in-place replication (free), exact separate
// replication (one S′ fetch per record), or a fused functional join whose
// page cost the memo caps at the traversed sets' total pages. ix is the
// index candidate over the Where expression, whose keys cover that path.
func (s *sess) pathExprs(q Query, ix *catalog.Index) []plan.PathExpr {
	type src struct {
		expr    string
		filter  bool
		covered bool
	}
	var exprs []src
	if q.Where != nil {
		exprs = append(exprs, src{q.Where.Expr, true, ix != nil && len(ix.Path) > 0})
	}
	for i := range q.Filters {
		exprs = append(exprs, src{q.Filters[i].Expr, true, false})
	}
	for _, e := range q.Project {
		exprs = append(exprs, src{e, false, false})
	}

	seen := make(map[string]int)
	var out []plan.PathExpr
	for _, e := range exprs {
		refs, field := splitExpr(e.expr)
		if len(refs) == 0 {
			continue
		}
		if i, dup := seen[e.expr]; dup {
			out[i].Filter = out[i].Filter || e.filter
			out[i].Covered = out[i].Covered || e.covered
			continue
		}
		p := s.classifyPath(q.Set, e.expr, refs, field)
		p.Filter = e.filter
		p.Covered = e.covered
		seen[e.expr] = len(out)
		out = append(out, p)
	}
	return out
}

// classifyPath mirrors resolveExpr's preference order without doing any I/O.
func (s *sess) classifyPath(set, expr string, refs []string, field string) plan.PathExpr {
	p := plan.PathExpr{Expr: expr}
	spec := catalog.PathSpec{Source: set, Refs: refs, Field: field}
	if _, ok := s.db.cat.FindPath(spec, catalog.InPlace); ok {
		p.Kind = plan.PathInPlace
		return p
	}
	if _, ok := s.db.cat.FindPath(spec, catalog.Separate); ok {
		p.Kind = plan.PathSeparate
		return p
	}
	p.Kind = plan.PathFused
	p.Levels = len(refs)
	skip := 0
	// A replicated reference prefix (§3.3.3 collapsing) shortens the walk:
	// the hidden ref jumps straight to level k+1.
	for k := len(refs) - 1; k >= 1; k-- {
		prefixSpec := catalog.PathSpec{Source: set, Refs: refs[:k], Field: refs[k]}
		if _, ok := s.db.cat.FindPath(prefixSpec, catalog.InPlace); ok {
			p.Levels = len(refs) - k
			skip = k
			break
		}
	}
	// The memo's page ceiling: total heap pages of the sets actually walked.
	if typ, err := s.db.cat.SetType(set); err == nil {
		cur := typ
		for i, r := range refs {
			f, ok := cur.Field(r)
			if !ok || f.Kind != schema.KindRef {
				break
			}
			next, ok := s.db.cat.TypeByName(f.RefType)
			if !ok {
				break
			}
			if i >= skip {
				p.LevelPages += s.typePages(next)
			}
			cur = next
		}
	}
	return p
}

// typePages sums the heap pages of the sets holding objects of typ.
func (s *sess) typePages(typ *schema.Type) float64 {
	var pages float64
	for _, set := range s.db.cat.Sets() {
		if set.TypeName != typ.Name {
			continue
		}
		if np, err := s.db.store.NumPages(set.FileID); err == nil {
			pages += float64(np)
		}
	}
	return pages
}
