package engine

import (
	"math"
	"sync"
	"testing"

	"github.com/exodb/fieldrepl/internal/advisor"
	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/schema"
)

// optimumAt returns the strategy slug the Section-6 model picks at update
// fraction pu, re-weighing a recommendation's costed strategies.
func optimumAt(rec advisor.Recommendation, pu float64) string {
	best, bestCost := "", math.Inf(1)
	for slug, c := range rec.Costs {
		total := (1-pu)*c.Read + pu*c.Update
		if total < bestCost {
			bestCost = total
			best = slug
		}
	}
	return best
}

func findRec(t *testing.T, rep advisor.Report, path string) advisor.Recommendation {
	t.Helper()
	for _, rec := range rep.Recommendations {
		if rec.Path == path {
			return rec
		}
	}
	t.Fatalf("no recommendation for %q in %d recommendations", path, len(rep.Recommendations))
	return advisor.Recommendation{}
}

// TestAdvisorConvergence replays a shifting workload — read-heavy, then
// update-heavy — and checks that the advisor's windowed mix tracks the shift
// and the recommendation converges to the Section-6 optimum for the true mix
// within the ring's window budget.
func TestAdvisorConvergence(t *testing.T) {
	const windowOps = 16
	const windows = 4
	db := openEmployeeDB(t, Config{AdvisorWindowOps: windowOps, AdvisorWindows: windows})
	populate(t, db, 2, 4, 40)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}

	read := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := db.Query(Query{
				Set:     "Emp1",
				Project: []string{"name"},
				Where:   &Pred{Expr: "dept.name", Op: OpEQ, Value: str("dept-01")},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	update := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := db.UpdateWhere("Dept",
				Pred{Expr: "name", Op: OpEQ, Value: str("dept-01")},
				map[string]schema.Value{"name": str("dept-01")}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase A: pure reads across several windows.
	read(4 * windowOps)
	rep := db.Advise()
	if !rep.Enabled {
		t.Fatal("advisor should be enabled by default")
	}
	if rep.TracesObserved == 0 || rep.OpsObserved == 0 {
		t.Fatalf("no operations observed: %+v", rep)
	}
	rec := findRec(t, rep, "Emp1.dept.name")
	if rec.Current != "in-place" {
		t.Fatalf("current strategy = %q, want in-place", rec.Current)
	}
	if rec.UpdateFraction != 0 {
		t.Fatalf("pure-read phase: update fraction = %v, want 0", rec.UpdateFraction)
	}
	if rec.WindowReads == 0 {
		t.Fatalf("pure-read phase: no windowed reads: %+v", rec)
	}
	if want := optimumAt(rec, 0); rec.Recommended != want {
		t.Fatalf("read-heavy recommendation = %q, want Section-6 optimum %q (costs %+v)",
			rec.Recommended, want, rec.Costs)
	}
	readOpt := rec.Recommended

	// Phase B: the workload shifts to pure updates of the replicated field.
	// The read-heavy windows must age out of the ring within its budget and
	// the recommendation converge to the optimum at the new true mix.
	converged := false
	var last advisor.Recommendation
	for round := 0; round < windows+2; round++ {
		update(windowOps)
		last = findRec(t, db.Advise(), "Emp1.dept.name")
		if last.UpdateFraction >= 0.9 && last.Recommended == optimumAt(last, 1) {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("after %d update windows: fraction=%v recommended=%q optimum=%q (costs %+v)",
			windows+2, last.UpdateFraction, last.Recommended, optimumAt(last, 1), last.Costs)
	}
	if updateOpt := optimumAt(last, 1); updateOpt != optimumAt(last, 0) && last.Recommended == readOpt {
		t.Fatalf("optimum shifts %q -> %q with the mix but recommendation stayed %q",
			optimumAt(last, 0), updateOpt, last.Recommended)
	}
	if last.Updates == 0 || last.Reads == 0 {
		t.Fatalf("all-time counts should span both phases: %+v", last)
	}

	rep = db.Advise()
	if rep.WindowsRotated < int64(windows) {
		t.Fatalf("windows rotated = %d, want >= %d", rep.WindowsRotated, windows)
	}
	if len(rep.ModelDrift) == 0 {
		t.Fatal("planned operations should feed the model-drift histograms")
	}
}

// TestAdvisorSuggestsUnreplicatedPath checks the other half of the loop: a
// dotted path that is read but not replicated shows up in the report costed
// against no replication, so the advisor can recommend *creating* replication.
func TestAdvisorSuggestsUnreplicatedPath(t *testing.T) {
	db := openEmployeeDB(t, Config{AdvisorWindowOps: 8, AdvisorWindows: 4})
	populate(t, db, 2, 4, 40)

	for i := 0; i < 24; i++ {
		if _, err := db.Query(Query{
			Set:   "Emp1",
			Where: &Pred{Expr: "dept.budget", Op: OpGT, Value: num(100)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	rec := findRec(t, db.Advise(), "Emp1.dept.budget")
	if rec.Current != "no-replication" {
		t.Fatalf("unregistered path current = %q, want no-replication", rec.Current)
	}
	if rec.WindowReads == 0 {
		t.Fatalf("unregistered path saw no reads: %+v", rec)
	}
	if len(rec.Costs) != 3 {
		t.Fatalf("want all three strategies costed, got %v", rec.Costs)
	}
	if want := optimumAt(rec, 0); rec.Recommended != want {
		t.Fatalf("recommended %q, want %q", rec.Recommended, want)
	}
}

func TestAdvisorDisabled(t *testing.T) {
	db := openEmployeeDB(t, Config{AdvisorDisabled: true})
	populate(t, db, 1, 2, 8)
	if _, err := db.Query(Query{Set: "Emp1", Where: &Pred{Expr: "dept.name", Op: OpEQ, Value: str("dept-01")}}); err != nil {
		t.Fatal(err)
	}
	rep := db.Advise()
	if rep.Enabled {
		t.Fatal("advisor disabled but report says enabled")
	}
	if rep.TracesObserved != 0 || len(rep.Recommendations) != 0 {
		t.Fatalf("disabled advisor accumulated state: %+v", rep)
	}
}

// TestAdvisorSubscriptionRace drives queries, updates, inserts, and Advise
// snapshots concurrently; run under -race it checks the trace subscription and
// the aggregation never race with the engine's own locking.
func TestAdvisorSubscriptionRace(t *testing.T) {
	db := openEmployeeDB(t, Config{AdvisorWindowOps: 8, AdvisorWindows: 2})
	st := populate(t, db, 2, 4, 20)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}

	const iters = 60
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_, _ = db.Query(Query{Set: "Emp1", Where: &Pred{Expr: "dept.name", Op: OpEQ, Value: str("dept-01")}})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_, _ = db.UpdateWhere("Dept",
				Pred{Expr: "name", Op: OpEQ, Value: str("dept-02")},
				map[string]schema.Value{"name": str("dept-02")})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = db.Update("Dept", st.depts[i%len(st.depts)], map[string]schema.Value{"budget": num(int64(i))})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rep := db.Advise()
			if !rep.Enabled {
				t.Error("advisor disabled mid-run")
				return
			}
		}
	}()
	wg.Wait()

	rec := findRec(t, db.Advise(), "Emp1.dept.name")
	if rec.Reads == 0 || rec.Updates == 0 {
		t.Fatalf("concurrent workload not aggregated: %+v", rec)
	}
}
