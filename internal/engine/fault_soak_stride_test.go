//go:build !soak

package engine

// faultSoakStride samples every 7th fault index in the default test run;
// `go test -tags soak` (make soak) covers every index exhaustively.
const faultSoakStride = 7
