package engine

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"github.com/exodb/fieldrepl/internal/obs"
)

// MetricsHandler returns the engine's observability HTTP handler, stdlib
// only, mounted on a private mux (nothing touches http.DefaultServeMux):
//
//	/metrics        Prometheus text exposition (version 0.0.4)
//	/advisor        the workload advisor's report as JSON (DB.Advise)
//	/debug/vars     the Metrics snapshot as JSON (expvar-style)
//	/debug/traces   the recent-trace ring as NDJSON, completion order
//	/debug/pprof/   the standard runtime profiles (CPU, heap, goroutine, ...)
//
// Every endpoint reads lock-free snapshots (the advisor report additionally
// takes the shared engine lock to read the catalog), so scraping never
// contends with queries. Series names and labels are documented in
// docs/observability.md.
func (db *DB) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", db.handleProm)
	mux.HandleFunc("/advisor", db.handleAdvisor)
	mux.HandleFunc("/debug/vars", db.handleVars)
	mux.HandleFunc("/debug/traces", db.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (db *DB) handleProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	io := db.IO()
	obs.PromCounter(w, "fieldrepl_store_reads_total", "Pages read from the page store.", io.Reads)
	obs.PromCounter(w, "fieldrepl_store_writes_total", "Pages written to the page store.", io.Writes)
	obs.PromCounter(w, "fieldrepl_store_allocs_total", "Pages allocated in the page store.", io.Allocs)

	pool := db.pool.Stats()
	obs.PromCounter(w, "fieldrepl_pool_hits_total", "Buffer pool hits.", pool.Hits)
	obs.PromCounter(w, "fieldrepl_pool_misses_total", "Buffer pool misses.", pool.Misses)
	obs.PromCounter(w, "fieldrepl_pool_evictions_total", "Buffer pool frame evictions.", pool.Evictions)
	obs.PromCounter(w, "fieldrepl_pool_flushes_total", "Dirty pages written back by the pool.", pool.Flushes)
	obs.PromCounter(w, "fieldrepl_pool_prefetched_total", "Pages brought in by scan readahead.", pool.Prefetched)

	tm := db.obs.Metrics()
	obs.PromGauge(w, "fieldrepl_ops_active", "Traced operations currently running.", float64(tm.Active))
	obs.PromCounter(w, "fieldrepl_ops_completed_total", "Traced operations completed.", tm.Completed)
	obs.PromCounter(w, "fieldrepl_ops_slow_total", "Operations at or over the slow-query threshold.", tm.Slow)

	// Per-kind operation latency; the finer per-(kind, set) breakdown is a
	// separate metric name so neither double-counts the other.
	obs.PromHeader(w, "fieldrepl_op_latency_seconds", "histogram", "Operation wall time by kind.")
	byKind := db.obs.LatencyByKind()
	for _, kind := range obs.SortedKeys(byKind) {
		obs.PromHistogram(w, "fieldrepl_op_latency_seconds", byKind[kind], "kind", kind)
	}
	if kindSet := db.obs.LatencyByKindSet(); len(kindSet) > 0 {
		obs.PromHeader(w, "fieldrepl_op_set_latency_seconds", "histogram", "Operation wall time by kind and set.")
		for _, ks := range kindSet {
			obs.PromHistogram(w, "fieldrepl_op_set_latency_seconds", ks.Snap, "kind", ks.Kind, "set", ks.Set)
		}
	}

	obs.PromHeader(w, "fieldrepl_lock_wait_seconds", "histogram", "Writer-lock acquisition wait per write operation.")
	obs.PromHistogram(w, "fieldrepl_lock_wait_seconds", db.lockWait.Snapshot())
	read, write := db.pool.StallHists()
	obs.PromHeader(w, "fieldrepl_pool_read_stall_seconds", "histogram", "Time stalled on store page reads (misses and prefetch batches).")
	obs.PromHistogram(w, "fieldrepl_pool_read_stall_seconds", read)
	obs.PromHeader(w, "fieldrepl_pool_write_stall_seconds", "histogram", "Time stalled on dirty write-backs, including the WAL write barrier.")
	obs.PromHistogram(w, "fieldrepl_pool_write_stall_seconds", write)

	if db.wal != nil {
		st := db.wal.Stats()
		obs.PromCounter(w, "fieldrepl_wal_records_total", "WAL records appended.", st.Records)
		obs.PromCounter(w, "fieldrepl_wal_commits_total", "WAL commit records appended.", st.Commits)
		obs.PromCounter(w, "fieldrepl_wal_fsyncs_total", "WAL fsyncs performed.", st.Fsyncs)
		obs.PromCounter(w, "fieldrepl_wal_bytes_total", "WAL bytes appended.", st.Bytes)
		obs.PromCounter(w, "fieldrepl_wal_checkpoints_total", "WAL checkpoints (log truncations).", st.Checkpoints)
		obs.PromCounter(w, "fieldrepl_wal_sync_waits_total", "Commits that waited for durability.", st.SyncWaits)
		obs.PromCounter(w, "fieldrepl_wal_shared_syncs_total", "Durability waits satisfied by another committer's fsync.", st.SharedSyncs)
		obs.PromGauge(w, "fieldrepl_wal_sync_queue", "Committers currently inside the durability wait.", float64(st.SyncQueue))
		obs.PromHeader(w, "fieldrepl_wal_fsync_wait_seconds", "histogram", "Time committers spent in the group-commit durability rendezvous.")
		obs.PromHistogram(w, "fieldrepl_wal_fsync_wait_seconds", db.wal.FsyncWaitHist())
		obs.PromCounter(w, "fieldrepl_wal_checkpoints_deferred_total", "Checkpoints that kept the log for a replication consumer.", st.CheckpointsDeferred)
	}

	if p := db.primary.Load(); p != nil {
		ps := p.Status()
		obs.PromGauge(w, "fieldrepl_repl_followers", "Followers currently connected.", float64(len(ps.Followers)))
		obs.PromCounter(w, "fieldrepl_repl_sync_timeouts_total", "Semi-sync waits that degraded to asynchronous.", ps.SyncTimeouts)
		obs.PromCounter(w, "fieldrepl_repl_unreplicated_total", "Semi-sync commits acked with no follower connected.", ps.Unreplicated)
		obs.PromCounter(w, "fieldrepl_repl_resyncs_total", "Followers sent back for a full snapshot.", ps.Resyncs)
		obs.PromCounter(w, "fieldrepl_repl_snapshots_total", "Snapshots shipped to followers.", ps.Snapshots)
		obs.PromHeader(w, "fieldrepl_repl_follower_lag_lsn", "gauge", "Per-follower replication lag in LSNs (primary durable - follower acked).")
		for _, fi := range ps.Followers {
			obs.PromValue(w, "fieldrepl_repl_follower_lag_lsn", float64(fi.LagLSN), "addr", fi.Addr)
		}
		obs.PromHeader(w, "fieldrepl_repl_follower_lag_ms", "gauge", "Per-follower replication lag in milliseconds (time the oldest unacked record has been outstanding).")
		for _, fi := range ps.Followers {
			obs.PromValue(w, "fieldrepl_repl_follower_lag_ms", fi.LagMs, "addr", fi.Addr)
		}
	}
	if db.advisor != nil {
		rep := db.Advise()
		obs.PromCounter(w, "fieldrepl_advisor_windows_total", "Advisor aggregation windows completed.", rep.WindowsRotated)
		obs.PromCounter(w, "fieldrepl_advisor_ops_total", "Path-relevant operations the advisor aggregated.", rep.OpsObserved)
		if len(rep.Recommendations) > 0 {
			obs.PromHeader(w, "fieldrepl_advisor_path_reads_total", "counter", "Read queries observed through each path.")
			for _, r := range rep.Recommendations {
				obs.PromValue(w, "fieldrepl_advisor_path_reads_total", float64(r.Reads), "path", r.Path)
			}
			obs.PromHeader(w, "fieldrepl_advisor_path_updates_total", "counter", "Updates observed propagating into each path.")
			for _, r := range rep.Recommendations {
				obs.PromValue(w, "fieldrepl_advisor_path_updates_total", float64(r.Updates), "path", r.Path)
			}
			obs.PromHeader(w, "fieldrepl_advisor_path_update_fraction", "gauge", "Windowed update fraction of each path's observed mix.")
			for _, r := range rep.Recommendations {
				obs.PromValue(w, "fieldrepl_advisor_path_update_fraction", r.UpdateFraction, "path", r.Path)
			}
			obs.PromHeader(w, "fieldrepl_advisor_strategy_cost", "gauge", "Section-6 pages per operation for each strategy at the observed mix.")
			for _, r := range rep.Recommendations {
				for _, st := range []string{"no-replication", "in-place", "separate"} {
					obs.PromValue(w, "fieldrepl_advisor_strategy_cost", r.Costs[st].Total, "path", r.Path, "strategy", st)
				}
			}
			obs.PromHeader(w, "fieldrepl_advisor_predicted_savings_pct", "gauge", "Predicted total-cost saving of the recommended strategy over the current one.")
			for _, r := range rep.Recommendations {
				obs.PromValue(w, "fieldrepl_advisor_predicted_savings_pct", r.PredictedSavingsPct, "path", r.Path, "recommended", r.Recommended)
			}
		}
		if len(rep.ModelDrift) > 0 {
			obs.PromHeader(w, "fieldrepl_advisor_model_error_pct", "gauge", "Predicted-vs-observed page error quantiles per access label.")
			for _, label := range obs.SortedKeys(rep.ModelDrift) {
				d := rep.ModelDrift[label]
				obs.PromValue(w, "fieldrepl_advisor_model_error_pct", d.P50Pct, "access", label, "quantile", "0.5")
				obs.PromValue(w, "fieldrepl_advisor_model_error_pct", d.P95Pct, "access", label, "quantile", "0.95")
				obs.PromValue(w, "fieldrepl_advisor_model_error_pct", d.P99Pct, "access", label, "quantile", "0.99")
			}
		}
	}

	if f := db.follower.Load(); f != nil {
		fs := f.Status()
		connected := 0.0
		if fs.Connected {
			connected = 1
		}
		obs.PromGauge(w, "fieldrepl_repl_connected", "1 while the follower's replication session is established.", connected)
		obs.PromGauge(w, "fieldrepl_repl_applied_lsn", "Last LSN durably applied by this follower.", float64(fs.AppliedLSN))
		obs.PromGauge(w, "fieldrepl_repl_lag_lsn", "Replication lag in LSNs as of the last heartbeat.", float64(fs.LagLSN))
		obs.PromCounter(w, "fieldrepl_repl_reconnects_total", "Replication session reconnect attempts.", fs.Reconnects)
		obs.PromCounter(w, "fieldrepl_repl_bad_frames_total", "Record batches rejected for framing or CRC damage.", fs.BadFrames)
		obs.PromHeader(w, "fieldrepl_repl_apply_seconds", "histogram", "Follower batch apply latency (receipt to local durability).")
		obs.PromHistogram(w, "fieldrepl_repl_apply_seconds", f.ApplyHist())
	}
}

// handleAdvisor serves the advisor report as indented JSON.
func (db *DB) handleAdvisor(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(db.Advise())
}

func (db *DB) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(db.Metrics())
}

// handleTraces streams the recent-trace ring as NDJSON, one Record per line,
// in completion order (oldest completion first — ids are issued at Start, so
// overlapping operations appear with non-monotonic ids; see obs.Recent).
func (db *DB) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, rec := range db.obs.Recent() {
		if err := enc.Encode(rec); err != nil {
			return
		}
	}
}
