package engine

import (
	"errors"
	"testing"

	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/core"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

func mustGet(t *testing.T, db *DB, set string, oid pagefile.OID) *schema.Object {
	t.Helper()
	obj, err := db.Get(set, oid)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestUnreplicateInPlace(t *testing.T) {
	db := openEmployeeDB(t, Config{})
	st := populate(t, db, 2, 4, 20)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if err := db.Unreplicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatalf("Unreplicate: %v", err)
	}
	// Hidden values and link pairs are gone.
	if emp := mustGet(t, db, "Emp1", st.emps[0]); len(emp.Hidden) != 0 {
		t.Fatalf("source keeps hidden values: %v", emp.Hidden)
	}
	if dept := mustGet(t, db, "Dept", st.depts[0]); len(dept.Links) != 0 {
		t.Fatalf("target keeps link pairs: %v", dept.Links)
	}
	// Queries fall back to functional joins with correct answers.
	res, err := db.Query(Query{Set: "Emp1", Project: []string{"dept.name"}})
	if err != nil || len(res.Rows) != 20 {
		t.Fatalf("query after unreplicate: %d rows, %v", len(res.Rows), err)
	}
	if res.Rows[0].Values[0].S != "dept-00" {
		t.Fatalf("value = %v", res.Rows[0].Values[0])
	}
	// The catalog entry is gone; the path can be re-created cleanly.
	if len(db.cat.Paths()) != 0 {
		t.Fatalf("paths left: %d", len(db.cat.Paths()))
	}
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatalf("re-replicate: %v", err)
	}
	verifyDB(t, db)
	// Targets are deletable after the remaining path is also removed.
	if err := db.Unreplicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("Emp1", st.emps[0], map[string]schema.Value{"dept": ref(pagefile.NilOID)}); err != nil {
		t.Fatal(err)
	}
}

func TestUnreplicateKeepsSharedLinks(t *testing.T) {
	db := openEmployeeDB(t, Config{})
	st := populate(t, db, 2, 4, 20)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if err := db.Replicate("Emp1.dept.budget", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	// Both share link 1; removing the name path must keep the link alive for
	// the budget path.
	if err := db.Unreplicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if dept := mustGet(t, db, "Dept", st.depts[0]); len(dept.Links) != 1 {
		t.Fatalf("shared link was destroyed: %v", dept.Links)
	}
	// Budget propagation still works.
	if err := db.Update("Dept", st.depts[0], map[string]schema.Value{"budget": num(777)}); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(Query{Set: "Emp1", Project: []string{"dept.budget"},
		Where: &Pred{Expr: "dept.budget", Op: OpEQ, Value: num(777)}})
	if len(res.Rows) == 0 {
		t.Fatal("budget propagation broken after sibling teardown")
	}
	verifyDB(t, db)
}

func TestUnreplicateSeparateGroup(t *testing.T) {
	db := openEmployeeDB(t, Config{})
	st := populate(t, db, 2, 4, 20)
	if err := db.Replicate("Emp1.dept.name", catalog.Separate); err != nil {
		t.Fatal(err)
	}
	if err := db.Replicate("Emp1.dept.budget", catalog.Separate); err != nil {
		t.Fatal(err)
	}
	// Removing one group member keeps the S′ registrations (the group
	// lives on for the other path).
	if err := db.Unreplicate("Emp1.dept.name", catalog.Separate); err != nil {
		t.Fatal(err)
	}
	if dept := mustGet(t, db, "Dept", st.depts[0]); len(dept.Seps) != 1 {
		t.Fatalf("group S′ entry dropped while still in use: %v", dept.Seps)
	}
	verifyDB(t, db)
	// Removing the last member clears everything.
	if err := db.Unreplicate("Emp1.dept.budget", catalog.Separate); err != nil {
		t.Fatal(err)
	}
	if dept := mustGet(t, db, "Dept", st.depts[0]); len(dept.Seps) != 0 {
		t.Fatalf("S′ entry survives group teardown: %v", dept.Seps)
	}
	if emp := mustGet(t, db, "Emp1", st.emps[0]); len(emp.Hidden) != 0 {
		t.Fatalf("hidden S′ ref survives: %v", emp.Hidden)
	}
	if len(db.cat.Paths()) != 0 {
		t.Fatal("paths remain")
	}
}

func TestUnreplicateCollapsedAndTwoLevel(t *testing.T) {
	db := openEmployeeDB(t, Config{})
	st := populate(t, db, 2, 4, 20)
	if err := db.Replicate("Emp1.dept.org.name", catalog.InPlace, catalog.WithCollapsed()); err != nil {
		t.Fatal(err)
	}
	if err := db.Unreplicate("Emp1.dept.org.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if org := mustGet(t, db, "Org", st.orgs[0]); len(org.Links) != 0 {
		t.Fatalf("collapsed terminal keeps link: %v", org.Links)
	}
	if dept := mustGet(t, db, "Dept", st.depts[0]); len(dept.Links) != 0 {
		t.Fatalf("collapsed marker survives: %v", dept.Links)
	}
	// Plain 2-level in-place teardown.
	if err := db.Replicate("Emp1.dept.org.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if err := db.Unreplicate("Emp1.dept.org.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if org := mustGet(t, db, "Org", st.orgs[0]); len(org.Links) != 0 {
		t.Fatalf("2-level terminal keeps link: %v", org.Links)
	}
	verifyDB(t, db)
}

func TestUnreplicateGuards(t *testing.T) {
	db := openEmployeeDB(t, Config{})
	populate(t, db, 2, 4, 10)
	if err := db.Unreplicate("Emp1.dept.name", catalog.InPlace); err == nil {
		t.Fatal("unreplicate of unknown path succeeded")
	}
	if err := db.Replicate("Emp1.dept.org.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex("byorg", "Emp1", "dept.org.name", false); err != nil {
		t.Fatal(err)
	}
	if err := db.Unreplicate("Emp1.dept.org.name", catalog.InPlace); !errors.Is(err, core.ErrPathInUse) {
		t.Fatalf("unreplicate under index: %v", err)
	}
	if err := db.DropIndex("byorg"); err != nil {
		t.Fatal(err)
	}
	if err := db.Unreplicate("Emp1.dept.org.name", catalog.InPlace); err != nil {
		t.Fatalf("unreplicate after index drop: %v", err)
	}
	if err := db.DropIndex("nope"); err == nil {
		t.Fatal("drop of unknown index succeeded")
	}
	verifyDB(t, db)
}

func TestUnreplicateDeferredPurgesQueue(t *testing.T) {
	db := openEmployeeDB(t, Config{})
	st := populate(t, db, 2, 4, 10)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace, catalog.WithDeferred()); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("Dept", st.depts[0], map[string]schema.Value{"name": str("x")}); err != nil {
		t.Fatal(err)
	}
	if db.PendingPropagations() != 1 {
		t.Fatal("no pending entry")
	}
	if err := db.Unreplicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if db.PendingPropagations() != 0 {
		t.Fatal("teardown left pending propagations")
	}
	verifyDB(t, db)
}
