package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// openWALDB opens a file-backed (WAL-enabled) database in a fresh temp dir.
func openWALDB(t *testing.T) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	return db, dir
}

func TestTxnCommitVisible(t *testing.T) {
	db, _ := openWALDB(t)
	defer db.Close()
	defineEmployeeSchema(t, db)
	st := populate(t, db, 1, 1, 2)

	txn, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	oid, err := txn.Insert("Emp1", map[string]schema.Value{
		"name": str("txn-emp"), "age": num(30), "salary": num(1), "dept": ref(st.depts[0]),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Update("Emp1", oid, map[string]schema.Value{"salary": num(2)}); err != nil {
		t.Fatal(err)
	}
	// The transaction sees its own uncommitted writes.
	obj, err := txn.Get("Emp1", oid)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := obj.Get("salary"); v.I != 2 {
		t.Fatalf("txn reads salary %d, want its own uncommitted 2", v.I)
	}
	if n, err := txn.Count("Emp1"); err != nil || n != 3 {
		t.Fatalf("txn count %d (err %v), want 3", n, err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("second Commit returned %v, want ErrTxnDone", err)
	}
	obj, err = db.Get("Emp1", oid)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := obj.Get("salary"); v.I != 2 {
		t.Fatalf("committed salary %d, want 2", v.I)
	}
	verifyDB(t, db)
}

func TestTxnRollbackDiscardsEverything(t *testing.T) {
	db, _ := openWALDB(t)
	defer db.Close()
	defineEmployeeSchema(t, db)
	st := populate(t, db, 2, 3, 9)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	if err := db.Replicate("Emp1.dept.budget", catalog.Separate); err != nil {
		t.Fatal(err)
	}
	before, err := db.Count("Emp1")
	if err != nil {
		t.Fatal(err)
	}

	txn, err := db.Begin(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate through every replication structure: a terminal update that
	// propagates in-place and separate, inserts, and a delete.
	if err := txn.Update("Dept", st.depts[0], map[string]schema.Value{
		"name": str("renamed"), "budget": num(4242),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("Emp1", map[string]schema.Value{
		"name": str("ghost"), "age": num(1), "salary": num(1), "dept": ref(st.depts[1]),
	}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("second Rollback returned %v, want ErrTxnDone", err)
	}

	if n, _ := db.Count("Emp1"); n != before {
		t.Fatalf("count %d after rollback, want %d", n, before)
	}
	obj, err := db.Get("Dept", st.depts[0])
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := obj.Get("name"); v.S == "renamed" {
		t.Fatal("rolled-back update still visible")
	}
	res, err := db.Query(Query{Set: "Emp1", Project: []string{"name"}, Where: &Pred{Expr: "name", Op: OpEQ, Value: str("ghost")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("rolled-back insert still visible")
	}
	verifyDB(t, db)
	if tainted := db.TaintedSets(); len(tainted) > 0 {
		t.Fatalf("rollback tainted sets: %v", tainted)
	}
}

func TestTxnFailedStatementAborts(t *testing.T) {
	db, _ := openWALDB(t)
	defer db.Close()
	defineEmployeeSchema(t, db)
	st := populate(t, db, 1, 1, 2)

	txn, err := db.Begin(nil)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := txn.Insert("Emp1", map[string]schema.Value{
		"name": str("doomed"), "age": num(1), "salary": num(1), "dept": ref(st.depts[0]),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A kind-mismatched value fails the statement and must abort the whole
	// transaction, taking the first insert with it.
	if _, err := txn.Insert("Emp1", map[string]schema.Value{"name": num(7)}); err == nil {
		t.Fatal("kind-mismatched insert succeeded")
	}
	if _, err := txn.Insert("Emp1", map[string]schema.Value{}); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("statement after abort returned %v, want ErrTxnDone", err)
	}
	if _, err := db.Get("Emp1", oid); err == nil {
		t.Fatal("aborted transaction's insert is visible")
	}
	verifyDB(t, db)
}

func TestTxnContextCancellation(t *testing.T) {
	db, _ := openWALDB(t)
	defer db.Close()
	defineEmployeeSchema(t, db)
	st := populate(t, db, 1, 1, 2)

	ctx, cancel := context.WithCancel(context.Background())
	txn, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := txn.Insert("Emp1", map[string]schema.Value{
		"name": str("cancelled"), "age": num(1), "salary": num(1), "dept": ref(st.depts[0]),
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := txn.Update("Emp1", oid, map[string]schema.Value{"salary": num(9)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("statement after cancel returned %v, want context.Canceled", err)
	}
	if _, err := txn.Get("Emp1", oid); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("statement after cancel-abort returned %v, want ErrTxnDone", err)
	}
	if _, err := db.Get("Emp1", oid); err == nil {
		t.Fatal("cancelled transaction's insert is visible")
	}
}

func TestTxnCommitSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defineEmployeeSchema(t, db)
	st := populate(t, db, 2, 3, 9)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}

	txn, err := db.Begin(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Update("Dept", st.depts[0], map[string]schema.Value{"name": str("post-crash")}); err != nil {
		t.Fatal(err)
	}
	oid, err := txn.Insert("Emp1", map[string]schema.Value{
		"name": str("survivor"), "age": num(1), "salary": num(1), "dept": ref(st.depts[0]),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no Sync — the committed pages live only in the pool
	// and the log.
	crashDB(t, db)

	db2, err := Open(Config{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	obj, err := db2.Get("Emp1", oid)
	if err != nil {
		t.Fatalf("committed insert lost in crash: %v", err)
	}
	if v, _ := obj.Get("name"); v.S != "survivor" {
		t.Fatalf("recovered name %q", v.S)
	}
	// The replicated dept.name must have recovered consistently too.
	res, err := db2.Query(Query{Set: "Emp1", Project: []string{"dept.name"}, Where: &Pred{Expr: "dept.name", Op: OpEQ, Value: str("post-crash")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("replicated update lost in crash")
	}
	verifyDB(t, db2)
	if tainted := db2.TaintedSets(); len(tainted) > 0 {
		t.Fatalf("recovery left taint: %v", tainted)
	}
}

func TestTxnUncommittedLostInCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defineEmployeeSchema(t, db)
	st := populate(t, db, 1, 1, 2)
	before, _ := db.Count("Emp1")

	txn, err := db.Begin(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("Emp1", map[string]schema.Value{
		"name": str("phantom"), "age": num(1), "salary": num(1), "dept": ref(st.depts[0]),
	}); err != nil {
		t.Fatal(err)
	}
	// Crash with the transaction open: it never committed, so reopen must
	// not see any of it. (The abandoned txn still holds the engine lock;
	// the crashed engine is simply dropped.)
	crashDB(t, db)

	db2, err := Open(Config{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.Count("Emp1"); n != before {
		t.Fatalf("count %d after crash, want %d (uncommitted insert must be lost)", n, before)
	}
	verifyDB(t, db2)
}

// crashDB abandons an engine without flushing: the OS-level file handles are
// released so the directory can be reopened, but no dirty state is written.
func crashDB(t *testing.T, db *DB) {
	t.Helper()
	if db.wal != nil {
		// Closing the log file does not sync or checkpoint anything beyond
		// what commits already forced — it only releases the handle.
		if err := db.wal.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrixReplicatedUpdate crashes the page store at every Nth I/O of
// an in-place + separate replicated update and reopens: WAL replay must
// leave no taint and a clean replication invariant without Repair, and the
// update must be all-or-nothing. Run for unclustered and clustered layouts.
func TestCrashMatrixReplicatedUpdate(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		name := "unclustered"
		if clustered {
			name = "clustered"
		}
		t.Run(name, func(t *testing.T) {
			const maxSteps = 300
			completed := false
			for n := 0; n < maxSteps && !completed; n++ {
				completed = crashMatrixStep(t, n, clustered)
			}
			if !completed {
				t.Fatalf("update still crashing after %d fault offsets", maxSteps)
			}
		})
	}
}

// crashMatrixStep runs one matrix cell: crash the store at the nth I/O of
// the update, reopen, verify. It reports whether the update ran to
// completion (the fault fired too late to interrupt it).
func crashMatrixStep(t *testing.T, n int, clustered bool) bool {
	t.Helper()
	dir := t.TempDir()
	inner, err := pagefile.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := pagefile.NewFaultStore(inner)
	db, err := Open(Config{Dir: dir, Store: fs, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	st := crashSetup(t, db) // replicates Emp1.dept.name in-place, Emp1.dept.budget separate
	if clustered {
		if err := db.BuildIndex("emp_by_dept", "Emp1", "dept.name", true); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}

	fs.AddFault(pagefile.Fault{Index: fs.Ops() + int64(n), Op: pagefile.OpAny, Crash: true})
	uerr := db.Update("Dept", st.depts[0], map[string]schema.Value{
		"name": str("crashed-rename"), "budget": num(999999),
	})
	if err := inner.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatalf("n=%d: reopen after crash: %v", n, err)
	}
	defer db2.Close()
	if tainted := db2.TaintedSets(); len(tainted) > 0 {
		t.Fatalf("n=%d: taint after WAL recovery: %v", n, tainted)
	}
	if errs := db2.VerifyReplication(); len(errs) > 0 {
		t.Fatalf("n=%d: replication inconsistent after recovery (no Repair allowed): %v", n, errs)
	}
	// All-or-nothing: the dept reads entirely old or entirely new.
	obj, err := db2.Get("Dept", st.depts[0])
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	nameV, _ := obj.Get("name")
	budgetV, _ := obj.Get("budget")
	renamed := nameV.S == "crashed-rename"
	rebudgeted := budgetV.I == 999999
	if renamed != rebudgeted {
		t.Fatalf("n=%d: half-applied update after recovery: name=%q budget=%d", n, nameV.S, budgetV.I)
	}
	if uerr == nil && !renamed {
		t.Fatalf("n=%d: update reported success but was lost in the crash", n)
	}
	if uerr != nil && renamed {
		// A failed update whose commit nonetheless survived would also be
		// wrong: oneShot only commits after fn succeeds.
		t.Fatalf("n=%d: failed update (%v) is visible after recovery", n, uerr)
	}
	return uerr == nil
}

func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir, PoolPages: 256, CommitInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defineEmployeeSchema(t, db)
	st := populate(t, db, 1, 1, 1)

	base, ok := db.WALStats()
	if !ok {
		t.Fatal("file-backed database reports no WAL")
	}

	const K = 16
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := db.Insert("Emp1", map[string]schema.Value{
				"name": str(fmt.Sprintf("w-%d", i)), "age": num(1), "salary": num(int64(i)), "dept": ref(st.depts[0]),
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	stats, _ := db.WALStats()
	commits := stats.Commits - base.Commits
	fsyncs := stats.Fsyncs - base.Fsyncs
	if commits < K {
		t.Fatalf("%d commits for %d concurrent inserts", commits, K)
	}
	if fsyncs < 1 {
		t.Fatal("no fsync at all")
	}
	if fsyncs*2 > commits {
		t.Fatalf("%d fsyncs for %d commits: group commit not batching (want < 0.5 fsyncs/commit)", fsyncs, commits)
	}
	verifyDB(t, db)
}

// TestTxnRaceWithQueries interleaves explicit transactions, one-shot DML,
// and traced queries from many goroutines; run under -race it exercises the
// capture and group-commit synchronization.
func TestTxnRaceWithQueries(t *testing.T) {
	db, _ := openWALDB(t)
	defer db.Close()
	defineEmployeeSchema(t, db)
	st := populate(t, db, 2, 3, 9)
	if err := db.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				txn, err := db.Begin(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				oid, err := txn.Insert("Emp1", map[string]schema.Value{
					"name": str(fmt.Sprintf("r-%d-%d", w, i)), "age": num(1), "salary": num(1), "dept": ref(st.depts[w%3]),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := txn.Update("Emp1", oid, map[string]schema.Value{"salary": num(int64(i))}); err != nil {
						t.Error(err)
						return
					}
					if err := txn.Commit(); err != nil {
						t.Error(err)
						return
					}
				} else if err := txn.Rollback(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, _, err := db.QueryTraced(Query{
					Set: "Emp1", Project: []string{"dept.name"},
					Where: &Pred{Expr: "salary", Op: OpGE, Value: num(0)},
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	verifyDB(t, db)
	if tainted := db.TaintedSets(); len(tainted) > 0 {
		t.Fatalf("race run tainted sets: %v", tainted)
	}
}
