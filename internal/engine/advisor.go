package engine

import (
	"sort"

	"github.com/exodb/fieldrepl/internal/advisor"
	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/costmodel"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// The advisor's engine glue. The engine stamps replication-relevant path keys
// onto traces at plan time — while it already holds the right locks and the
// catalog — so the advisor's trace subscription never calls back into the
// engine. The catalog is consulted again only at Advise() time, under the
// shared lock, to turn aggregated keys into costable facts.

// pathKeysForQuery returns the canonical path keys (PathSpec dotted form,
// "Set.ref1...field") of every multi-level expression the query resolves —
// predicates, filters, and projections. Unregistered paths are included
// deliberately: an often-read unreplicated path is exactly what the advisor
// should suggest replicating.
func (s *sess) pathKeysForQuery(q Query) []string {
	var keys []string
	seen := map[string]bool{}
	add := func(expr string) {
		refs, field := splitExpr(expr)
		if len(refs) == 0 {
			return
		}
		key := catalog.PathSpec{Source: q.Set, Refs: refs, Field: field}.String()
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	if q.Where != nil {
		add(q.Where.Expr)
	}
	for i := range q.Filters {
		add(q.Filters[i].Expr)
	}
	for _, expr := range q.Project {
		add(expr)
	}
	sort.Strings(keys)
	return keys
}

// stampUpdateMeta stamps an update's advisor metadata on the session trace:
// the field names written and the keys of every replication path whose
// terminal type is the updated set's type and whose replicated fields
// intersect the written ones — the propagations this update pays for.
func (s *sess) stampUpdateMeta(typ *schema.Type, vals map[string]schema.Value) {
	if s.tr == nil {
		return
	}
	fields := make([]string, 0, len(vals))
	for f := range vals {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	s.tr.SetFields(fields)
	var keys []string
	for _, p := range s.db.cat.Paths() {
		if p.TerminalType().Name != typ.Name {
			continue
		}
		hit := false
		for _, rf := range p.Fields {
			if _, ok := vals[rf.Name]; ok {
				hit = true
				break
			}
		}
		if hit {
			keys = append(keys, p.Spec.String())
		}
	}
	sort.Strings(keys)
	s.tr.SetPaths(keys)
}

// Advise returns the advisor's current report: per-path strategy
// recommendations ranked by predicted savings, plus cost-model drift
// summaries. With the advisor disabled it returns a zero report with
// Enabled=false. Recommend-only: nothing is applied.
func (db *DB) Advise() advisor.Report {
	if db.advisor == nil {
		return advisor.Report{}
	}
	return db.advisor.Report(db.pathFacts(db.advisor.Keys()))
}

// pathFacts assembles the costable facts for every registered replication
// path plus every observed-but-unregistered path key, under the shared lock:
// current strategy, clustering setting, and measured cost-model parameters.
func (db *DB) pathFacts(observed []string) []advisor.PathFacts {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var facts []advisor.PathFacts
	have := map[string]bool{}
	for _, p := range db.cat.Paths() {
		st := costmodel.InPlace
		if p.Strategy == catalog.Separate {
			st = costmodel.Separate
		}
		k := 0.0
		for _, rf := range p.Fields {
			k += fieldBytes(rf.Kind)
		}
		pm, setting, ok := db.pathModelParams(p.Spec, k)
		if !ok {
			continue
		}
		key := p.Spec.String()
		have[key] = true
		facts = append(facts, advisor.PathFacts{
			Key: key, Current: st, Setting: setting, Params: pm, Deferred: p.Deferred,
		})
	}
	for _, key := range observed {
		if have[key] {
			continue
		}
		spec, err := catalog.ParsePathSpec(key)
		if err != nil {
			continue
		}
		pm, setting, ok := db.pathModelParams(spec, 0)
		if !ok {
			continue
		}
		facts = append(facts, advisor.PathFacts{
			Key: key, Current: costmodel.NoReplication, Setting: setting, Params: pm,
		})
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].Key < facts[j].Key })
	return facts
}

// pathModelParams derives live Section-6 parameters for a path spec from the
// catalog and store: measured cardinalities (SCount, F), schema-derived
// object sizes (RSize, SSize, K), and the actual page capacity. Constants the
// engine cannot measure (B+tree fanout, header overhead) keep the Figure 10
// defaults. kBytes overrides the replicated-field size when the caller knows
// the registered field set; zero derives it from the terminal field. Callers
// hold db.mu.
func (db *DB) pathModelParams(spec catalog.PathSpec, kBytes float64) (costmodel.Params, costmodel.Setting, bool) {
	pm := costmodel.Default()
	srcType, err := db.cat.SetType(spec.Source)
	if err != nil {
		return pm, costmodel.Unclustered, false
	}
	t := srcType
	for _, ref := range spec.Refs {
		f, ok := t.Field(ref)
		if !ok || f.Kind != schema.KindRef {
			return pm, costmodel.Unclustered, false
		}
		nt, ok := db.cat.TypeByName(f.RefType)
		if !ok {
			return pm, costmodel.Unclustered, false
		}
		t = nt
	}
	termField, ok := t.Field(spec.Field)
	if !ok || termField.Kind == schema.KindRef {
		return pm, costmodel.Unclustered, false
	}
	if kBytes <= 0 {
		kBytes = fieldBytes(termField.Kind)
	}

	sess := db.readSess(nil)
	srcCard := sess.setStats(spec.Source).Card
	// The terminal objects live in whichever set carries the terminal type;
	// sets are sorted so multi-set types resolve deterministically.
	termCard := 1.0
	sets := db.cat.Sets()
	sort.Slice(sets, func(i, j int) bool { return sets[i].Name < sets[j].Name })
	for _, cs := range sets {
		if cs.TypeName == t.Name {
			termCard = sess.setStats(cs.Name).Card
			break
		}
	}
	if termCard < 1 {
		termCard = 1
	}
	if srcCard < 1 {
		srcCard = 1
	}

	pm.B = float64(pagefile.UserBytes)
	pm.SCount = termCard
	pm.F = srcCard / termCard
	pm.K = kBytes
	pm.RSize = objBytes(srcType)
	pm.SSize = objBytes(t)
	pm.TSize = pm.RSize

	setting := costmodel.Unclustered
	for _, ix := range db.cat.IndexesOn(spec.Source) {
		if ix.Clustered {
			setting = costmodel.Clustered
			break
		}
	}
	return pm, setting, true
}
