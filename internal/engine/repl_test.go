package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/repl"
	"github.com/exodb/fieldrepl/internal/schema"
)

// fastFollower is the follower tuning every test uses: tight backoff so
// reconnect-driven scenarios converge in milliseconds, not seconds.
func fastFollower() repl.FollowerConfig {
	return repl.FollowerConfig{
		DialTimeout: 2 * time.Second,
		MinBackoff:  10 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
		IdleTimeout: 5 * time.Second,
	}
}

// startPrimary opens a file-backed database and starts shipping its WAL on a
// loopback listener, returning the database and the address followers dial.
func startPrimary(t *testing.T, cfg repl.Config) (*DB, string) {
	t.Helper()
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ServeReplication(ln, cfg); err != nil {
		t.Fatal(err)
	}
	return db, ln.Addr().String()
}

// startFollower attaches a follower replica in dir (fresh or resuming) to the
// primary at addr.
func startFollower(t *testing.T, dir, addr string) *DB {
	t.Helper()
	f, err := OpenFollower(Config{Dir: dir, PoolPages: 512}, addr, fastFollower())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitCaughtUp waits until the follower has durably applied everything the
// primary has appended so far.
func waitCaughtUp(t *testing.T, p, f *DB) {
	t.Helper()
	target := p.wal.LastLSN()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := f.ReplicationStatus().Follower
		if st != nil && st.AppliedLSN >= target {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for follower to reach LSN %d; follower=%+v primary=%+v",
		target, f.ReplicationStatus().Follower, p.ReplicationStatus().Primary)
}

var replSetProj = map[string][]string{
	"Org":  {"name", "budget"},
	"Dept": {"name", "budget"},
	"Emp1": {"name", "age", "salary"},
	"Emp2": {"name", "age", "salary"},
}

// dumpSet renders a set as oid → projected values, the logical image used to
// compare a replica against its primary.
func dumpSet(t *testing.T, db *DB, set string) map[string]string {
	t.Helper()
	res, err := db.Query(Query{Set: set, Project: replSetProj[set]})
	if err != nil {
		t.Fatalf("dump %s: %v", set, err)
	}
	out := make(map[string]string, len(res.Rows))
	for _, r := range res.Rows {
		out[fmt.Sprintf("%v", r.OID)] = fmt.Sprintf("%v", r.Values)
	}
	return out
}

// assertReplicaMatches checks the follower is logically identical to the
// primary — same rows at the same OIDs, same physical page counts — and that
// every derived replication structure on the follower verifies clean.
func assertReplicaMatches(t *testing.T, p, f *DB, sets ...string) {
	t.Helper()
	for _, set := range sets {
		want, got := dumpSet(t, p, set), dumpSet(t, f, set)
		if len(want) != len(got) {
			t.Fatalf("set %s: primary has %d rows, follower %d", set, len(want), len(got))
		}
		for oid, vals := range want {
			if got[oid] != vals {
				t.Fatalf("set %s oid %s: primary %q, follower %q", set, oid, vals, got[oid])
			}
		}
		pn, err := p.NumPages(set)
		if err != nil {
			t.Fatal(err)
		}
		fn, err := f.NumPages(set)
		if err != nil {
			t.Fatal(err)
		}
		if pn != fn {
			t.Fatalf("set %s: primary %d pages, follower %d", set, pn, fn)
		}
	}
	verifyDB(t, f)
}

// TestReplicationSnapshotAndStream covers both catch-up paths in one flow: a
// follower attaching to a primary with existing history takes a full
// snapshot, then live writes reach it through the record stream.
func TestReplicationSnapshotAndStream(t *testing.T) {
	p, addr := startPrimary(t, repl.Config{})
	defineEmployeeSchema(t, p)
	st := populate(t, p, 2, 4, 30)
	if err := p.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}
	// The log begins at LSN 1 with the full history, so a fresh follower
	// could catch up by streaming; checkpoint first so it must snapshot.
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}

	f := startFollower(t, t.TempDir(), addr)
	waitCaughtUp(t, p, f)
	if fs := f.ReplicationStatus().Follower; fs.Snapshots != 1 {
		t.Fatalf("fresh follower behind a truncated log took %d snapshots, want 1", fs.Snapshots)
	}
	assertReplicaMatches(t, p, f, "Org", "Dept", "Emp1")

	// Live stream: inserts, an update that propagates a replicated path, and
	// a delete all land on the replica.
	if _, err := p.Insert("Emp1", map[string]schema.Value{
		"name": str("streamed"), "age": num(33), "salary": num(1), "dept": ref(st.depts[0]),
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Update("Dept", st.depts[0], map[string]schema.Value{"name": str("renamed")}); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("Emp1", st.emps[2]); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, f)
	assertReplicaMatches(t, p, f, "Org", "Dept", "Emp1")

	// The replicated path answers on the follower without touching Dept.
	res, err := f.Query(Query{Set: "Emp1", Project: []string{"name", "dept.name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("replicated-path query returned nothing on the follower")
	}

	// The replica is read-only: every write entry point refuses.
	if _, err := f.Insert("Emp1", map[string]schema.Value{"name": str("x")}); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower Insert: %v, want ErrNotPrimary", err)
	}
	if err := f.Update("Dept", st.depts[0], map[string]schema.Value{"name": str("x")}); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower Update: %v, want ErrNotPrimary", err)
	}
	if err := f.Delete("Emp1", st.emps[0]); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower Delete: %v, want ErrNotPrimary", err)
	}
	if err := f.CreateSet("X", "EMP"); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower DDL: %v, want ErrNotPrimary", err)
	}
	if _, err := f.Begin(context.Background()); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower Begin: %v, want ErrNotPrimary", err)
	}
}

// TestReplicationFollowerRestart closes a follower cleanly, lets the primary
// advance, and reopens the same directory: the stream must resume from the
// local log without a snapshot.
func TestReplicationFollowerRestart(t *testing.T) {
	p, addr := startPrimary(t, repl.Config{})
	defineEmployeeSchema(t, p)
	st := populate(t, p, 1, 2, 10)

	fdir := t.TempDir()
	f := startFollower(t, fdir, addr)
	waitCaughtUp(t, p, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		if _, err := p.Insert("Emp1", map[string]schema.Value{
			"name": str(fmt.Sprintf("late-%d", i)), "age": num(40), "salary": num(int64(i)), "dept": ref(st.depts[0]),
		}); err != nil {
			t.Fatal(err)
		}
	}

	f2 := startFollower(t, fdir, addr)
	waitCaughtUp(t, p, f2)
	if fs := f2.ReplicationStatus().Follower; fs.Snapshots != 0 {
		t.Fatalf("restarted follower resynced via snapshot (%d), want log resume", fs.Snapshots)
	}
	assertReplicaMatches(t, p, f2, "Org", "Dept", "Emp1")
}

// TestReplicationFollowerCrashRestart kill-9s the follower mid-stream and
// reopens it: local WAL replay must recover the applied state and the stream
// must resume cleanly.
func TestReplicationFollowerCrashRestart(t *testing.T) {
	p, addr := startPrimary(t, repl.Config{})
	defineEmployeeSchema(t, p)
	st := populate(t, p, 1, 2, 10)

	fdir := t.TempDir()
	f := startFollower(t, fdir, addr)
	waitCaughtUp(t, p, f)
	f.CrashStop()

	for i := 0; i < 5; i++ {
		if _, err := p.Insert("Emp1", map[string]schema.Value{
			"name": str(fmt.Sprintf("post-crash-%d", i)), "age": num(40), "salary": num(int64(i)), "dept": ref(st.depts[0]),
		}); err != nil {
			t.Fatal(err)
		}
	}

	f2 := startFollower(t, fdir, addr)
	waitCaughtUp(t, p, f2)
	assertReplicaMatches(t, p, f2, "Org", "Dept", "Emp1")
}

// TestReplicationScratchFIDGap burns file IDs on the primary with unlogged
// scratch query outputs, then creates a set whose logged FileCreate lands
// past the gap. The follower must place the new set's file on the logged ID
// (filling the gap with placeholders), and a restart — whose recovery
// replays those same FileCreate records from the local log — must come back
// identical rather than failing on the ID mismatch.
func TestReplicationScratchFIDGap(t *testing.T) {
	p, addr := startPrimary(t, repl.Config{})
	defineEmployeeSchema(t, p)
	st := populate(t, p, 1, 2, 10)

	fdir := t.TempDir()
	f := startFollower(t, fdir, addr)
	waitCaughtUp(t, p, f)

	for i := 0; i < 3; i++ {
		if _, err := p.Query(Query{Set: "Emp1", Project: []string{"name"}, EmitOutput: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.CreateSet("Late", "EMP"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert("Late", map[string]schema.Value{
		"name": str("gapped"), "age": num(28), "salary": num(7), "dept": ref(st.depts[0]),
	}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, f)
	assertReplicaMatches(t, p, f, "Org", "Dept", "Emp1")
	res, err := f.Query(Query{Set: "Late", Project: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("follower sees %d rows in the gapped set, want 1", len(res.Rows))
	}

	// Crash-restart the follower: recovery replays the local log — gapped
	// FileCreate records included — before the stream resumes.
	f.CrashStop()
	f2 := startFollower(t, fdir, addr)
	waitCaughtUp(t, p, f2)
	assertReplicaMatches(t, p, f2, "Org", "Dept", "Emp1")
	res, err = f2.Query(Query{Set: "Late", Project: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("restarted follower sees %d rows in the gapped set, want 1", len(res.Rows))
	}
}

// TestReplicationResyncAfterTruncation detaches the follower, advances and
// checkpoints the primary (truncating the records the follower would need),
// and re-attaches: the primary must deny log catch-up and ship a snapshot.
func TestReplicationResyncAfterTruncation(t *testing.T) {
	p, addr := startPrimary(t, repl.Config{})
	defineEmployeeSchema(t, p)
	st := populate(t, p, 1, 2, 10)

	fdir := t.TempDir()
	f := startFollower(t, fdir, addr)
	waitCaughtUp(t, p, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Wait for the primary's session goroutine to notice the disconnect and
	// release its retain point — otherwise the checkpoint below may defer
	// truncation and the re-attached follower would stream instead of resync.
	waitCond(t, 10*time.Second, "primary drops dead follower", func() bool {
		return len(p.ReplicationStatus().Primary.Followers) == 0
	})

	for i := 0; i < 5; i++ {
		if _, err := p.Insert("Emp1", map[string]schema.Value{
			"name": str(fmt.Sprintf("gap-%d", i)), "age": num(40), "salary": num(int64(i)), "dept": ref(st.depts[0]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// No follower is connected, so the checkpoint truncates for real.
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}

	f2 := startFollower(t, fdir, addr)
	waitCaughtUp(t, p, f2)
	if fs := f2.ReplicationStatus().Follower; fs.Snapshots != 1 {
		t.Fatalf("follower behind a truncated log took %d snapshots, want 1", fs.Snapshots)
	}
	if ps := p.ReplicationStatus().Primary; ps.Snapshots < 1 {
		t.Fatal("primary shipped no snapshot")
	}
	assertReplicaMatches(t, p, f2, "Org", "Dept", "Emp1")
}

// damageProxy relays follower↔primary traffic, damaging the first connection
// in the primary→follower direction at a byte offset: either flipping one
// byte (torn frame) or cutting the connection (drop mid-batch). Later
// connections relay cleanly, so the follower's retry converges.
func damageProxy(t *testing.T, target string, corruptAt, cutAt int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var first atomic.Bool
	first.Store(true)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			damaged := first.CompareAndSwap(true, false)
			go func() { // follower → primary: always clean
				_, _ = io.Copy(up, c)
				up.Close()
				c.Close()
			}()
			go func() { // primary → follower: damage the first session
				defer c.Close()
				defer up.Close()
				if !damaged {
					_, _ = io.Copy(c, up)
					return
				}
				var seen int64
				buf := make([]byte, 4096)
				for {
					n, err := up.Read(buf)
					if n > 0 {
						b := buf[:n]
						if corruptAt >= 0 && corruptAt >= seen && corruptAt < seen+int64(n) {
							b[corruptAt-seen] ^= 0x5A
						}
						if cutAt >= 0 && seen+int64(n) > cutAt {
							_, _ = c.Write(b[:cutAt-seen])
							return
						}
						if _, werr := c.Write(b); werr != nil {
							return
						}
						seen += int64(n)
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// replicationDamageScenario drives bulk load through a damaged first session
// and asserts the follower retries and still converges byte-identical.
func replicationDamageScenario(t *testing.T, corruptAt, cutAt int64) {
	t.Helper()
	p, addr := startPrimary(t, repl.Config{})
	// Attach the follower before any data exists so both sides start at LSN
	// 0 and everything travels through the record stream (no snapshot).
	f := startFollower(t, t.TempDir(), damageProxy(t, addr, corruptAt, cutAt))
	waitCond(t, 15*time.Second, "follower session", func() bool {
		fs := f.ReplicationStatus().Follower
		return fs != nil && fs.Connected
	})

	defineEmployeeSchema(t, p)
	populate(t, p, 2, 4, 60) // ~60 pages of record traffic past the damage offset

	waitCaughtUp(t, p, f)
	if fs := f.ReplicationStatus().Follower; fs.Reconnects < 1 {
		t.Fatalf("damage at corrupt=%d cut=%d never forced a reconnect", corruptAt, cutAt)
	}
	assertReplicaMatches(t, p, f, "Org", "Dept", "Emp1")
}

// TestReplicationTornFrame flips one byte deep in the record stream: the
// follower must reject the damaged batch (envelope CRC), reconnect, and
// converge without ever applying damaged bytes.
func TestReplicationTornFrame(t *testing.T) {
	replicationDamageScenario(t, 20_000, -1)
}

// TestReplicationConnDropMidBatch cuts the connection mid-batch: the
// follower must resume from its last durable commit boundary and converge.
func TestReplicationConnDropMidBatch(t *testing.T) {
	replicationDamageScenario(t, -1, 20_000)
}

// TestPromoteRefusesConnectedLaggedFollower stalls the follower's applier
// (holding its writer lock) while the primary commits, then asserts Promote
// refuses with ErrFollowerLagged — promoting a lagging replica of a live
// primary would fork the history.
func TestPromoteRefusesConnectedLaggedFollower(t *testing.T) {
	p, addr := startPrimary(t, repl.Config{})
	defineEmployeeSchema(t, p)
	st := populate(t, p, 1, 2, 5)

	f := startFollower(t, t.TempDir(), addr)
	waitCaughtUp(t, p, f)

	// Stall the applier: ApplyTxns takes the follower's writer lock, so the
	// session records the primary's new durable LSN, then blocks mid-apply.
	f.mu.Lock()
	if _, err := p.Insert("Emp1", map[string]schema.Value{
		"name": str("ahead"), "age": num(50), "salary": num(9), "dept": ref(st.depts[0]),
	}); err != nil {
		f.mu.Unlock()
		t.Fatal(err)
	}
	waitCond(t, 15*time.Second, "follower to observe lag", func() bool {
		fs := f.ReplicationStatus().Follower
		return fs != nil && fs.Connected && fs.LagLSN > 0
	})
	// The primary's per-follower view must report the same lag, in LSNs and
	// in wall-clock milliseconds (time the oldest unacked record has waited).
	waitCond(t, 15*time.Second, "primary to report follower lag", func() bool {
		ps := p.ReplicationStatus().Primary
		if ps == nil {
			return false
		}
		for _, fi := range ps.Followers {
			if fi.LagLSN > 0 && fi.LagMs > 0 {
				return true
			}
		}
		return false
	})
	if err := f.Promote(); !errors.Is(err, repl.ErrFollowerLagged) {
		f.mu.Unlock()
		t.Fatalf("Promote on lagged connected follower: %v, want ErrFollowerLagged", err)
	}
	f.mu.Unlock()

	waitCaughtUp(t, p, f)
	if err := f.Promote(); err != nil {
		t.Fatalf("Promote on caught-up follower: %v", err)
	}
	if _, err := f.Insert("Emp1", map[string]schema.Value{
		"name": str("post-promote"), "age": num(1), "salary": num(1), "dept": ref(st.depts[0]),
	}); err != nil {
		t.Fatalf("promoted follower refused a write: %v", err)
	}
	if err := f.Promote(); !errors.Is(err, ErrNotFollower) {
		t.Fatalf("second Promote: %v, want ErrNotFollower", err)
	}
}

// TestPrimarySurvivesFollowerDeath kill-9s a follower and checks the primary
// keeps committing and eventually drops the dead session.
func TestPrimarySurvivesFollowerDeath(t *testing.T) {
	p, addr := startPrimary(t, repl.Config{Heartbeat: 50 * time.Millisecond, WriteTimeout: time.Second})
	defineEmployeeSchema(t, p)
	st := populate(t, p, 1, 2, 5)

	f := startFollower(t, t.TempDir(), addr)
	waitCaughtUp(t, p, f)
	f.CrashStop()

	for i := 0; i < 20; i++ {
		if _, err := p.Insert("Emp1", map[string]schema.Value{
			"name": str(fmt.Sprintf("alone-%d", i)), "age": num(30), "salary": num(int64(i)), "dept": ref(st.depts[0]),
		}); err != nil {
			t.Fatalf("primary write %d failed after follower death: %v", i, err)
		}
	}
	waitCond(t, 15*time.Second, "primary to drop the dead follower", func() bool {
		return len(p.ReplicationStatus().Primary.Followers) == 0
	})
}

// TestReplicationFailoverTorture is the end-to-end failover drill: eight
// concurrent writers against a semi-synchronous primary, a follower attached
// mid-load (snapshot under load), the primary kill-9ed at a random commit
// offset, and the follower promoted. The promoted replica must hold every
// acknowledged commit, carry no taint, and verify clean.
func TestReplicationFailoverTorture(t *testing.T) {
	p, addr := startPrimary(t, repl.Config{
		MinSyncFollowers: 1,
		SyncTimeout:      20 * time.Second,
	})
	defineEmployeeSchema(t, p)
	st := populate(t, p, 2, 4, 0)
	if err := p.Replicate("Emp1.dept.name", catalog.InPlace); err != nil {
		t.Fatal(err)
	}

	// killed is flipped BEFORE the primary dies: only commits acknowledged
	// strictly before the kill count toward the zero-loss check. (A commit
	// racing the kill may or may not survive; both outcomes are correct
	// because its caller never got a pre-kill acknowledgement.)
	var killed atomic.Bool
	var ackedMu sync.Mutex
	acked := map[string]bool{}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; ; s++ {
				name := fmt.Sprintf("w%d-s%d", w, s)
				_, err := p.Insert("Emp1", map[string]schema.Value{
					"name": str(name), "age": num(int64(20 + w)),
					"salary": num(int64(s)), "dept": ref(st.depts[(w+s)%len(st.depts)]),
				})
				if err != nil {
					return // the primary died under us
				}
				if !killed.Load() {
					ackedMu.Lock()
					acked[name] = true
					ackedMu.Unlock()
				}
			}
		}(w)
	}

	// Attach the follower while the writers are pounding: the snapshot is
	// taken under live load.
	time.Sleep(100 * time.Millisecond)
	f := startFollower(t, t.TempDir(), addr)
	waitCond(t, 15*time.Second, "follower session under load", func() bool {
		fs := f.ReplicationStatus().Follower
		return fs != nil && fs.Connected
	})
	time.Sleep(300 * time.Millisecond)

	killed.Store(true)
	p.CrashStop()
	wg.Wait()
	ackedMu.Lock()
	n := len(acked)
	ackedMu.Unlock()
	if n == 0 {
		t.Fatal("no commits were acknowledged before the kill; the drill tested nothing")
	}

	waitCond(t, 15*time.Second, "follower to notice the dead primary", func() bool {
		fs := f.ReplicationStatus().Follower
		return fs != nil && !fs.Connected
	})
	if err := f.Promote(); err != nil {
		t.Fatalf("Promote after primary death: %v", err)
	}

	if tainted := f.TaintedSets(); len(tainted) != 0 {
		t.Fatalf("promoted follower is tainted: %v", tainted)
	}
	verifyDB(t, f)
	res, err := f.Query(Query{Set: "Emp1", Project: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(res.Rows))
	for _, r := range res.Rows {
		have[fmt.Sprintf("%v", r.Values[0])] = true
	}
	ackedMu.Lock()
	defer ackedMu.Unlock()
	missing := 0
	for name := range acked {
		if !have[fmt.Sprintf("%v", str(name))] {
			missing++
			t.Errorf("acknowledged commit %s lost in failover", name)
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d acknowledged commits missing on the promoted follower", missing, n)
	}
	if _, err := f.Insert("Emp1", map[string]schema.Value{
		"name": str("new-era"), "age": num(1), "salary": num(1), "dept": ref(st.depts[0]),
	}); err != nil {
		t.Fatalf("promoted follower refused the first new-era write: %v", err)
	}
}
