package engine

import (
	"errors"
	"fmt"
	"strings"

	"github.com/exodb/fieldrepl/internal/btree"
	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/core"
	"github.com/exodb/fieldrepl/internal/heap"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// DefineType registers a type (EXTRA "define type").
func (db *DB) DefineType(name string, fields []schema.Field) error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	_, err := db.cat.DefineType(name, fields)
	return err
}

// CreateSet creates a named top-level set stored as its own disk file
// (EXTRA "create").
func (db *DB) CreateSet(name, typeName string) error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	f, err := heap.Create(db.pool, name)
	if err != nil {
		return err
	}
	db.noteFileCreated(f.ID(), name)
	if _, err := db.cat.CreateSet(name, typeName, f.ID()); err != nil {
		return err
	}
	db.files[f.ID()] = f
	return db.syncIfDurable()
}

// Replicate registers a replication path given in the paper's dotted syntax
// ("Emp1.dept.name", "Emp1.dept.org.name", "Emp1.dept.all") and builds its
// replicated state over existing data.
func (db *DB) Replicate(path string, strategy catalog.Strategy, opts ...catalog.PathOption) error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	spec, err := catalog.ParsePathSpec(path)
	if err != nil {
		return err
	}
	p, err := db.cat.AddPath(spec, strategy, opts...)
	if err != nil {
		return err
	}
	if err := db.mgr.BuildPath(p); err != nil {
		// The path stays registered with its build incomplete; taint the
		// source set so the partial state is never trusted. Repair finishes
		// the build (it derives the same structures the build would have).
		db.taint(spec.Source, err)
		return err
	}
	return db.syncIfDurable()
}

// BuildIndex builds a B+tree on a set (EXTRA "build btree on"). expr is
// either a base field name ("salary") or a dotted path ("dept.org.name");
// path indexes require the path to be replicated in-place first (§3.3.4).
// clustered records whether the set's file is physically ordered by this key
// (a workload property; the executor uses it for plan metadata only).
func (db *DB) BuildIndex(name, set, expr string, clustered bool) error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	typ, err := db.cat.SetType(set)
	if err != nil {
		return err
	}
	parts := strings.Split(expr, ".")
	field := parts[len(parts)-1]
	refs := parts[:len(parts)-1]

	var keyKind schema.Kind
	var path *catalog.Path
	if len(refs) == 0 {
		f, ok := typ.Field(field)
		if !ok {
			return fmt.Errorf("engine: set %s has no field %q", set, field)
		}
		if f.Kind == schema.KindRef {
			return fmt.Errorf("engine: cannot index reference attribute %s.%s", set, field)
		}
		keyKind = f.Kind
	} else {
		spec := catalog.PathSpec{Source: set, Refs: refs, Field: field}
		p, ok := db.cat.FindPath(spec, catalog.InPlace)
		if !ok {
			return fmt.Errorf("engine: index on path %s requires the path to be replicated in-place first (§3.3.4)", spec)
		}
		if p.Deferred && db.mgr.HasPending(p) {
			if err := db.mgr.FlushPath(p); err != nil {
				return err
			}
		}
		path = p
		for _, pf := range p.Fields {
			if pf.Name == field {
				keyKind = pf.Kind
			}
		}
		if keyKind == schema.KindRef {
			return fmt.Errorf("engine: cannot index replicated reference attribute %s", spec)
		}
	}

	tree, err := btree.Create(db.pool, "__idx_"+name)
	if err != nil {
		return err
	}
	db.noteFileCreated(tree.FileID(), "__idx_"+name)
	ix := &catalog.Index{
		Name: name, Set: set, Field: field, Path: refs,
		Clustered: clustered, KeyKind: keyKind, FileID: tree.FileID(),
	}
	if err := db.cat.AddIndex(ix); err != nil {
		return err
	}
	db.trees[name] = tree

	// Backfill from existing data. A failed backfill is compensated by
	// removing the half-built index (its pages are orphaned, like DropIndex).
	setFile, err := db.SetFile(set)
	if err != nil {
		return err
	}
	err = setFile.Scan(func(oid pagefile.OID, payload []byte) error {
		obj, err := schema.Decode(typ, payload)
		if err != nil {
			return err
		}
		var v schema.Value
		if path == nil {
			v, _ = obj.Get(field)
		} else {
			var rf catalog.ReplField
			for _, pf := range path.Fields {
				if pf.Name == field {
					rf = pf
				}
			}
			v, err = db.mgr.ReadReplicated(path, obj, rf.Idx, nil)
			if err != nil {
				return err
			}
		}
		return tree.Insert(keyFor(v), oid)
	})
	if err != nil {
		_ = db.cat.RemoveIndex(name)
		delete(db.trees, name)
		return err
	}
	return db.syncIfDurable()
}

// Unreplicate removes a replication path: hidden values, link structures not
// shared with other paths, and (for the last path of an S′ group) the S′
// registrations are torn down, and the catalog entry is dropped. Fails if an
// index is built on the path's replicated values; drop the index first.
func (db *DB) Unreplicate(path string, strategy catalog.Strategy) error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	spec, err := catalog.ParsePathSpec(path)
	if err != nil {
		return err
	}
	p, ok := db.cat.FindPath(spec, strategy)
	if !ok {
		return fmt.Errorf("engine: no %s replication path %s", strategy, spec)
	}
	for _, f := range p.Fields {
		if ix, ok := db.cat.PathIndexFor(p.Spec.Source, p.Spec.Refs, f.Name); ok {
			return fmt.Errorf("%w: index %s on %s", core.ErrPathInUse, ix.Name, spec)
		}
	}
	if err := db.mgr.TeardownPath(p); err != nil {
		// Partial teardown: the path is still registered, some structures are
		// gone. Taint so nothing trusts the remains; Repair restores them.
		db.taint(p.Spec.Source, err)
		return err
	}
	if err := db.cat.RemovePath(p); err != nil {
		return err
	}
	return db.syncIfDurable()
}

// DropIndex removes an index definition and stops maintaining it. The
// index's pages are orphaned (page stores do not delete files).
func (db *DB) DropIndex(name string) error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.cat.RemoveIndex(name); err != nil {
		return err
	}
	delete(db.trees, name)
	return nil
}

// keyFor maps a value to its order-preserving index key.
func keyFor(v schema.Value) btree.Key {
	switch v.Kind {
	case schema.KindInt:
		return btree.Int64Key(v.I)
	case schema.KindFloat:
		return btree.Float64Key(v.F)
	case schema.KindString:
		return btree.StringKey(v.S)
	default:
		return btree.Key{}
	}
}

// HiddenChanged implements core.Listener: it keeps indexes on replicated
// paths exact as update propagation rewrites hidden values.
func (db *DB) HiddenChanged(source pagefile.OID, p *catalog.Path, f catalog.ReplField, old, new schema.Value) {
	ix, ok := db.cat.PathIndexFor(p.Spec.Source, p.Spec.Refs, f.Name)
	if !ok {
		return
	}
	tree, ok := db.treeFor(ix.Name)
	if !ok {
		return
	}
	// Tolerate a missing old entry (first installation) and an existing new
	// entry (idempotent re-propagation); any other failure is surfaced by
	// the next DML operation.
	if err := tree.Delete(keyFor(old), source); err != nil && !errors.Is(err, btree.ErrNotFound) {
		db.idxErr = err
	}
	if err := tree.Insert(keyFor(new), source); err != nil && !errors.Is(err, btree.ErrExists) {
		db.idxErr = err
	}
}

// maintainBaseIndexes applies an object transition (nil old = insert, nil
// new = delete) to the base-field indexes of a set, through the session's
// views (index files are part of a fine writer's footprint).
func (s *sess) maintainBaseIndexes(set string, oid pagefile.OID, old, new *schema.Object) error {
	for _, ix := range s.db.cat.IndexesOn(set) {
		if ix.IsPathIndex() {
			continue
		}
		tree, ok := s.treeFor(ix.Name)
		if !ok {
			continue
		}
		var oldV, newV schema.Value
		hasOld, hasNew := false, false
		if old != nil {
			oldV, _ = old.Get(ix.Field)
			hasOld = true
		}
		if new != nil {
			newV, _ = new.Get(ix.Field)
			hasNew = true
		}
		if hasOld && hasNew && oldV.Equal(newV) {
			continue
		}
		if hasOld {
			if err := tree.Delete(keyFor(oldV), oid); err != nil {
				return fmt.Errorf("engine: index %s: %w", ix.Name, err)
			}
		}
		if hasNew {
			if err := tree.Insert(keyFor(newV), oid); err != nil {
				return fmt.Errorf("engine: index %s: %w", ix.Name, err)
			}
		}
	}
	return nil
}

// dropPathIndexEntriesOnDelete is unnecessary: core notifies the listener
// with (old -> zero) transitions while unregistering a deleted source, and
// the final zero-value entries are removed below in Delete via
// removePathIndexZeroEntries.
func (s *sess) removePathIndexZeroEntries(set string, oid pagefile.OID) {
	for _, ix := range s.db.cat.IndexesOn(set) {
		if !ix.IsPathIndex() {
			continue
		}
		if tree, ok := s.treeFor(ix.Name); ok {
			_ = tree.Delete(keyFor(schema.Zero(ix.KeyKind)), oid)
		}
	}
}
