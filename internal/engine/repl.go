package engine

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"

	"github.com/exodb/fieldrepl/internal/btree"
	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/core"
	"github.com/exodb/fieldrepl/internal/heap"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/repl"
	"github.com/exodb/fieldrepl/internal/wal"
)

// Replication roles. A database is a primary (writable, the default) or a
// follower (read-only, continuously replaying the primary's WAL). The only
// transition is follower → primary, via Promote.
const (
	rolePrimary int32 = iota
	roleFollower
)

// ErrNotPrimary is returned by write operations on a follower: a replica is
// read-only until Promote.
var ErrNotPrimary = errors.New("engine: database is a read-only follower")

// ErrNotFollower is returned by Promote on a database that is not a follower.
var ErrNotFollower = errors.New("engine: database is not a follower")

// writable gates every mutating entry point. Reads are never gated: serving
// them at the follower's applied LSN is the whole point of a read replica.
func (db *DB) writable() error {
	if db.role.Load() == roleFollower {
		return ErrNotPrimary
	}
	return nil
}

// ServeReplication starts shipping this database's WAL to followers
// connecting on ln. The database keeps committing regardless of follower
// health: a follower that cannot drain its socket is dropped, and checkpoint
// truncation is only deferred for connected followers within cfg.RetainBytes.
// With cfg.MinSyncFollowers > 0, commits additionally wait (bounded by
// cfg.SyncTimeout) until that many followers have durably acked them.
func (db *DB) ServeReplication(ln net.Listener, cfg repl.Config) error {
	if err := db.writable(); err != nil {
		return err
	}
	if db.wal == nil {
		return errors.New("engine: replication requires a WAL-backed database (set Dir, leave WALDisabled false)")
	}
	p := repl.NewPrimary(db.wal, db.replSnapshot, cfg)
	if !db.primary.CompareAndSwap(nil, p) {
		p.Close()
		return errors.New("engine: already serving replication")
	}
	p.Serve(ln)
	return nil
}

// replSnapshot captures a consistent snapshot of the store for a follower
// that must full-resync. It runs under the writer lock, so the log is
// quiescent (every append path holds db.mu); all buffered state is flushed,
// forced durable, and every file — scratch query-output files included, so
// file IDs stay aligned with streamed FileCreate records — is copied at a
// known LSN.
func (db *DB) replSnapshot() (*repl.Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.pool.FlushAll(); err != nil {
		return nil, err
	}
	snapLSN := db.wal.LastLSN()
	if err := db.wal.WaitDurable(snapLSN); err != nil {
		return nil, err
	}
	cat, err := db.cat.Snapshot()
	if err != nil {
		return nil, err
	}
	snap := &repl.Snapshot{LSN: snapLSN, Catalog: cat}
	for fid := pagefile.FileID(1); ; fid++ {
		name, err := db.store.FileName(fid)
		if errors.Is(err, pagefile.ErrNoSuchFile) {
			break
		}
		if err != nil {
			return nil, err
		}
		n, err := db.store.NumPages(fid)
		if err != nil {
			return nil, err
		}
		pages := make([]pagefile.Page, n)
		if n > 0 {
			if err := db.store.ReadPages(fid, 0, pages); err != nil {
				return nil, err
			}
		}
		snap.Files = append(snap.Files, repl.SnapshotFile{FID: fid, Name: name, Pages: pages})
	}
	return snap, nil
}

// OpenFollower opens a read-only replica of the primary at primaryAddr. The
// database recovers its local log like a normal Open, then resumes streaming
// from its last durable LSN (a fresh directory gets a full snapshot). All
// write operations fail with ErrNotPrimary until Promote. cfg must be
// file-backed with the WAL enabled — the local log is what makes applied
// transactions durable and restarts resumable.
func OpenFollower(cfg Config, primaryAddr string, fcfg repl.FollowerConfig) (*DB, error) {
	if cfg.Dir == "" || cfg.WALDisabled {
		return nil, errors.New("engine: follower requires a file-backed database with the WAL enabled")
	}
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	db.role.Store(roleFollower)
	// Open's recovery replayed the whole local log into the store, so the
	// applied frontier starts at the log end.
	db.follower.Store(repl.StartFollower(primaryAddr, &replTarget{db: db, applied: db.wal.LastLSN()}, fcfg))
	return db, nil
}

// Promote turns a follower into a writable primary after the old primary is
// gone: the replication session is stopped, the applied state is forced
// durable, and the role flips. The LSN sequence continues where the stream
// ended, so a later follower of the new primary resumes cleanly.
//
// Promote refuses with repl.ErrFollowerLagged while the session to the old
// primary is still live and the follower is behind it — promoting then would
// fork the history (the old primary keeps committing LSNs this replica never
// saw). The check demands fresh evidence, not the last heartbeat's possibly
// stale accounting: while connected, Promote waits for a post-call heartbeat
// confirming the applied LSN covers everything the primary holds durable
// (bounded by the session's idle timeout). Once the primary is truly gone
// the session drops and Promote proceeds; anything the dead primary
// committed beyond the follower's applied LSN was never acked by this
// follower, so semi-sync commits are never lost. The old primary must never
// come back as a primary — wipe it and re-attach it as a follower.
func (db *DB) Promote() error {
	if db.role.Load() != roleFollower {
		return ErrNotFollower
	}
	f := db.follower.Load()
	if f != nil {
		if err := f.ConfirmCaughtUp(); err != nil {
			return err
		}
		f.Stop() // no ApplyTxns is in flight after Stop returns
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.store.SyncAll(); err != nil {
		return err
	}
	data, err := db.cat.Snapshot()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(db.dir, catalogFileName), data, 0o644); err != nil {
		return err
	}
	if err := db.wal.Checkpoint(); err != nil {
		return err
	}
	db.follower.Store(nil)
	db.role.Store(rolePrimary)
	return nil
}

// ReplicationStatus reports the database's replication role and, when
// replication is active, the side-specific state: per-follower lag on a
// shipping primary, connection/apply state on a follower.
type ReplicationStatus struct {
	Role     string               `json:"role"`
	Primary  *repl.PrimaryStatus  `json:"primary,omitempty"`
	Follower *repl.FollowerStatus `json:"follower,omitempty"`
}

// ReplicationStatus reports role, per-follower lag (primary side) and
// connection/apply progress (follower side).
func (db *DB) ReplicationStatus() ReplicationStatus {
	st := ReplicationStatus{Role: "primary"}
	if db.role.Load() == roleFollower {
		st.Role = "follower"
	}
	if p := db.primary.Load(); p != nil {
		ps := p.Status()
		st.Primary = &ps
	}
	if f := db.follower.Load(); f != nil {
		fs := f.Status()
		st.Follower = &fs
	}
	return st
}

// waitReplicated is the semi-synchronous hook on the commit path, called by
// waitDurable after the local fsync.
func (db *DB) waitReplicated(lsn uint64) {
	if p := db.primary.Load(); p != nil {
		p.WaitReplicated(lsn)
	}
}

// closeRepl stops replication components. Must be called WITHOUT db.mu held:
// the follower applier takes db.mu inside ApplyTxns, and Stop waits for it.
func (db *DB) closeRepl() {
	if p := db.primary.Swap(nil); p != nil {
		p.Close()
	}
	if f := db.follower.Swap(nil); f != nil {
		f.Stop()
	}
}

// CrashStop simulates kill -9 for crash-recovery and failover tests: the WAL
// and store handles are closed without flushing the buffer pool, writing the
// catalog, or checkpointing. In-flight commits whose fsync had not completed
// fail; everything acknowledged durable stays on disk. The DB object is
// unusable afterwards (operations fail with closed-store errors); reopen the
// directory to recover.
func (db *DB) CrashStop() {
	db.closeRepl()
	if db.wal != nil {
		// Close outside db.mu: commit waiters block in the WAL, not under
		// db.mu, and closing wakes them with ErrClosed.
		_ = db.wal.Close()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	_ = db.store.Close()
}

// replTarget adapts the engine to repl.Target: the follower applier feeds it
// snapshots and committed transactions, and it installs them under the
// engine's writer lock so replica reads never see a half-applied transaction.
type replTarget struct {
	db *DB
	// applied is the LSN through which the *store* reflects the stream — the
	// resume point reported to the primary. It deliberately trails the local
	// log when an apply fails partway: the log may durably hold transactions
	// the store never absorbed, and resuming from the log end would skip them
	// forever. Only the single follower session goroutine touches it.
	applied uint64
}

// LastLSN implements repl.Target: the follower's resume point is the applied
// frontier, not the local log end, so transactions whose apply failed after
// the raw append are re-sent (AppendRaw dedups the duplicate frames).
func (t *replTarget) LastLSN() uint64 { return t.applied }

// ApplySnapshot implements repl.Target: replace the entire local state with
// the primary's snapshot — store files, catalog, and log position.
func (t *replTarget) ApplySnapshot(snap *repl.Snapshot) error {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	// Drop every cached page first: stale frames must neither serve reads nor
	// flush over the incoming images. No pins can be live under the writer
	// lock, and a follower has no dirty pages of its own.
	if err := db.pool.Reset(); err != nil {
		return err
	}
	for _, sf := range snap.Files {
		if _, err := db.store.FileName(sf.FID); err != nil {
			if !errors.Is(err, pagefile.ErrNoSuchFile) {
				return err
			}
			got, err := db.store.CreateFile(sf.Name)
			if err != nil {
				return err
			}
			if got != sf.FID {
				return fmt.Errorf("engine: snapshot file %q installed as %d, primary says %d", sf.Name, got, sf.FID)
			}
		}
		n, err := db.store.NumPages(sf.FID)
		if err != nil {
			return err
		}
		for n < uint32(len(sf.Pages)) {
			if _, err := db.store.Allocate(sf.FID); err != nil {
				return err
			}
			n++
		}
		for i := range sf.Pages {
			pid := pagefile.PageID{File: sf.FID, Page: uint32(i)}
			if err := db.store.WritePage(pid, &sf.Pages[i]); err != nil {
				return err
			}
		}
		// A diverged follower may have a longer file than the primary: zero
		// the tail so stale records can never scan back into results.
		var zero pagefile.Page
		for p := uint32(len(sf.Pages)); p < n; p++ {
			if err := db.store.WritePage(pagefile.PageID{File: sf.FID, Page: p}, &zero); err != nil {
				return err
			}
		}
	}
	if err := db.store.SyncAll(); err != nil {
		return err
	}
	// The store now embodies everything through snap.LSN: restart the local
	// log there (durably — ResetTo syncs the new header).
	if err := db.wal.ResetTo(snap.LSN + 1); err != nil {
		return err
	}
	if err := db.installCatalog(snap.Catalog); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(db.dir, catalogFileName), snap.Catalog, 0o644); err != nil {
		return err
	}
	t.applied = snap.LSN
	return nil
}

// ApplyTxns implements repl.Target. Each transaction is first made durable in
// the follower's own log (AppendRaw of the primary's verbatim frames + fsync)
// and then applied to the store — log-before-data, so a crash between the two
// replays the transaction from the local log. The caller acks the primary
// only after this returns.
func (t *replTarget) ApplyTxns(txns []repl.Txn) error {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	for i := range txns {
		txn := &txns[i]
		nCommits := 1
		if err := db.wal.AppendRaw(txn.Raw, txn.LastLSN, txn.Records, nCommits); err != nil {
			return err
		}
	}
	last := txns[len(txns)-1].LastLSN
	if err := db.wal.WaitDurable(last); err != nil {
		return err
	}
	for i := range txns {
		txn := &txns[i]
		// ApplyCommitted fills file-ID gaps left by the primary's unlogged
		// scratch files (query outputs) with placeholders, so logged
		// FileCreate records land on the same IDs here and — crucially — in
		// restart recovery, which replays the exact same records from the
		// local log if we crash between AppendRaw and this apply.
		var rep wal.RecoveryReport
		if err := wal.ApplyCommitted(db.store, txn.Files, txn.Pages, &rep); err != nil {
			return err
		}
		// Drop cached copies of the pages just changed beneath the pool.
		for j := range txn.Pages {
			if err := db.pool.Invalidate(txn.Pages[j].PID); err != nil {
				return err
			}
		}
		if txn.Catalog != nil {
			if err := db.installCatalog(txn.Catalog); err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(db.dir, catalogFileName), txn.Catalog, 0o644); err != nil {
				return err
			}
		}
		t.applied = txn.LastLSN
	}
	return nil
}

// installCatalog swaps in a catalog snapshot streamed from the primary and
// rebuilds everything derived from it: the replication manager and the heap
// and index handles. Called under db.mu.
func (db *DB) installCatalog(data []byte) error {
	cat, err := catalog.Restore(data)
	if err != nil {
		return fmt.Errorf("engine: restoring streamed catalog: %w", err)
	}
	db.cat = cat
	db.mgr = core.New(db.cat, db, core.WithInlineMax(db.inlineMax), core.WithListener(db))
	db.files = map[pagefile.FileID]*heap.File{}
	db.trees = map[string]*btree.Tree{}
	return db.rehydrate()
}
