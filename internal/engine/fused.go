package engine

import (
	"sync"

	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// fuseState is a per-query memo implementing Odra-style join fusion for
// functional joins: the multi-level path traversal still runs as one pass,
// but every decoded traversal target and every resolved terminal value is
// cached for the query's lifetime. Sharing-heavy reference graphs (many
// employees per department, many departments per organization) then read and
// decode each target once per query instead of once per source record — the
// traversal's page cost is capped at the target sets' total pages, which is
// exactly what the planner's fused-path costing assumes.
//
// The memo lives on the session only for the duration of one query
// (installed after any deferred-propagation drain, discarded before the
// query returns), so it can never serve values stale against a mutation: no
// write runs inside a query, and updateWhere's collection phase never
// installs one. The mutex makes it safe for parallel scan workers, which
// evaluate path predicates concurrently.
type fuseState struct {
	mu    sync.Mutex
	objs  map[pagefile.OID]*schema.Object
	terms map[termKey]schema.Value
}

// termKey memoizes a resolved terminal value by the first reference OID the
// walk departs from plus the path expression — every source record pointing
// at the same first-level target resolves to the same terminal value.
type termKey struct {
	oid  pagefile.OID
	expr string
}

func newFuseState() *fuseState {
	return &fuseState{
		objs:  make(map[pagefile.OID]*schema.Object),
		terms: make(map[termKey]schema.Value),
	}
}

// readObjectFused is readObject through the fusion memo: traversal targets
// are decoded once per query. Only walk paths use it — source-set records
// stream from the scan and are never cached.
func (s *sess) readObjectFused(oid pagefile.OID, typ *schema.Type) (*schema.Object, error) {
	f := s.fuse
	if f == nil {
		return s.readObject(oid, typ)
	}
	f.mu.Lock()
	obj, ok := f.objs[oid]
	f.mu.Unlock()
	if ok {
		return obj, nil
	}
	obj, err := s.readObject(oid, typ)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.objs[oid] = obj
	f.mu.Unlock()
	return obj, nil
}

// term looks up a memoized terminal value.
func (f *fuseState) term(k termKey) (schema.Value, bool) {
	f.mu.Lock()
	v, ok := f.terms[k]
	f.mu.Unlock()
	return v, ok
}

func (f *fuseState) setTerm(k termKey, v schema.Value) {
	f.mu.Lock()
	f.terms[k] = v
	f.mu.Unlock()
}
