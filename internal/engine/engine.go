// Package engine assembles the substrates into a running object-oriented
// database: a page store, a buffer pool, heap files per set, B+tree indexes,
// the system catalog, and the field-replication manager. It exposes the
// DDL/DML/query operations the examples, experiments, and the public
// fieldrepl API use.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/exodb/fieldrepl/internal/advisor"
	"github.com/exodb/fieldrepl/internal/btree"
	"github.com/exodb/fieldrepl/internal/buffer"
	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/core"
	"github.com/exodb/fieldrepl/internal/heap"
	"github.com/exodb/fieldrepl/internal/obs"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/repl"
	"github.com/exodb/fieldrepl/internal/schema"
	"github.com/exodb/fieldrepl/internal/wal"
)

// Config configures a database instance.
type Config struct {
	// PoolPages is the buffer pool size in pages (default 256). Experiments
	// size the pool to a query's working set so that, combined with
	// ColdCache between queries, measured I/O realizes the cost model's
	// "optimal join" assumption.
	PoolPages int
	// Dir, when non-empty, stores page files on disk under this directory;
	// otherwise the database is in-memory (the experiment default, where
	// page I/O counts rather than page residence is what matters).
	Dir string
	// InlineMax is the link-inlining threshold of §4.3.1 (default 1; 0
	// disables inlining).
	InlineMax int
	// Store, when non-nil, is used as the page store instead of the MemStore /
	// FileStore the engine would otherwise create. This is the fault-injection
	// seam: tests wrap a real store in a pagefile.FaultStore to exercise
	// failure paths. When Dir is also set, the catalog snapshot is still
	// read/written under Dir while page I/O goes through the injected store.
	Store pagefile.Store
	// PoolShards is the number of lock shards the buffer pool is striped
	// over (default 1, the historical single-clock pool the figure
	// reproductions assume). Concurrent readers scale with shards.
	PoolShards int
	// Readahead is the scan prefetch depth in pages; 0 (the default)
	// disables it, keeping per-query buffer miss counts byte-identical to
	// the paper's unprefetched execution.
	Readahead int
	// ScanWorkers is the number of goroutines non-indexed Query/UpdateWhere
	// predicate evaluation fans out to (default 1, which preserves the
	// sequential scan's deterministic result order).
	ScanWorkers int
	// WALPath relocates the write-ahead log (default Dir/wal.log). The WAL
	// is enabled for every file-backed database (Dir != ""): transactions
	// append page after-images and a commit record, the commit is fsync'd
	// (group commit batches concurrent committers into one fsync), and
	// recovery replay at Open re-applies committed transactions a crash cut
	// short. In-memory databases (Dir == "") run without a WAL, keeping the
	// experiments' legacy compensate-or-taint DML semantics.
	WALPath string
	// CommitInterval is the optional group-commit batching window: each
	// committer waits this long before forcing the log, giving concurrent
	// commits time to pile onto one fsync. Zero (the default) means commits
	// force the log immediately (batching still happens under concurrency
	// via the leader/follower fsync).
	CommitInterval time.Duration
	// WALDisabled turns the WAL off for a file-backed database, restoring
	// the pre-WAL durability mode (used for baseline measurements).
	WALDisabled bool
	// AdvisorDisabled turns the workload advisor off: no trace subscription,
	// no per-path mix aggregation, and Advise reports Enabled=false. Used for
	// overhead baselines (cmd/advisorbench).
	AdvisorDisabled bool
	// AdvisorWindowOps/AdvisorWindows size the advisor's aggregation windows
	// (operations per window, windows retained); zero takes the advisor's
	// defaults. Tests and benchmarks shrink them to converge fast.
	AdvisorWindowOps int
	AdvisorWindows   int
}

// DB is a database instance. It is safe for concurrent use. On a WAL-backed
// database, DML statements lock only their write footprint — the target set
// plus every set reachable through replicated-field/inverse-link propagation
// — so writers to disjoint footprints run and commit concurrently, and
// read-only operations (Query, Get, Count, Inverse) read page-level
// snapshots that never block on writers. DDL, replication control, explicit
// Begin transactions, cache control, and all statements on a database
// without a WAL serialize behind the exclusive lock as before.
type DB struct {
	store   pagefile.Store
	pool    *buffer.Pool
	cat     *catalog.Catalog
	mgr     *core.Manager
	dir     string
	workers int

	// mu is the engine's coarse/fine boundary. Coarse operations — DDL,
	// replication control, explicit Begin transactions, cache control, and
	// the no-WAL DML path — take it exclusively. Fine-grained writers (WAL
	// DML) and readers take it shared and coordinate among themselves through
	// setLocks and the buffer pool's capture scopes. Internal helpers
	// (including the core.Storage implementation the replication manager
	// re-enters through) never acquire it.
	mu sync.RWMutex
	// setLocks is the per-set lock manager for fine-grained writers: each
	// statement locks its whole write footprint in sorted order before
	// mutating anything (see footprint.go, lockmgr.go).
	setLocks *lockMgr
	// fsMu guards files/trees/nextOut/scratchFIDs in shared-lock contexts,
	// where a session registering a query scratch file races with other
	// sessions' lookups. Exclusive-lock holders access the maps directly
	// (the RWMutex orders them against every shared-mode access). Leaf-level:
	// nothing is called while holding it.
	fsMu sync.Mutex

	files   map[pagefile.FileID]*heap.File
	trees   map[string]*btree.Tree
	nextOut int

	// obs issues per-operation I/O traces (see internal/obs).
	obs *obs.Registry
	// advisor aggregates the completed-trace stream into per-replicated-path
	// read/update mixes and model-drift histograms (nil when
	// Config.AdvisorDisabled); advisorCancel detaches its obs subscription.
	advisor       *advisor.Advisor
	advisorCancel func()
	// lockWait is the writer-lock contention histogram: how long each write
	// operation blocked acquiring db.mu exclusively. Together with the WAL's
	// fsync-wait and the pool's stall histograms it decomposes a slow commit
	// into lock wait vs log wait vs device time.
	lockWait *obs.Histogram
	// writerTrace is the trace of the write operation currently holding the
	// exclusive lock, or nil. It is set and cleared only under db.mu.Lock, and
	// read by internal helpers (heapFor, treeFor, ReadObject) that run under
	// either lock mode — readers can only ever observe nil, because a writer
	// excludes them, so every helper invoked during a DML/DDL operation binds
	// that operation's trace without threading a parameter through
	// core.Storage.
	writerTrace *obs.Trace

	// idxErr records an index-maintenance failure raised inside a listener
	// callback (which cannot return an error); the next DML call surfaces it.
	idxErr error

	// wal is the write-ahead log, nil for in-memory or WALDisabled
	// databases.
	wal *wal.Manager
	// inlineMax is the resolved link-inlining threshold, kept so a follower
	// can rebuild the replication manager around a streamed catalog.
	inlineMax int

	// Replication state. role gates write entry points (rolePrimary accepts
	// them, roleFollower fails them with ErrNotPrimary); the only transition
	// is follower → primary in Promote. primary/follower hold the active
	// shipping/applying components, nil when replication is not running.
	role     atomic.Int32
	primary  atomic.Pointer[repl.Primary]
	follower atomic.Pointer[repl.Follower]
	// txn is the transaction currently holding the writer lock (explicit
	// Begin or an implicit one-shot), or nil. Set and read only under
	// db.mu.Lock; internal helpers use it to register undo actions and to
	// suppress the legacy compensate-or-taint paths (a transaction rolls
	// back physically instead).
	txn *Txn

	// pendingFiles are page files created outside any transaction (DDL: set
	// heaps, index trees, path build files) that the log has not yet shipped.
	// While the database is shipping its WAL, sync() logs them — together
	// with the dirty pages it is about to flush — as a commit, so a streaming
	// follower learns of files that local recovery gets for free from the
	// filesystem. Cleared by each successful sync (a checkpoint either ships
	// or truncates them). Guarded by db.mu.Lock.
	pendingFiles []wal.FileCreate
	// scratchFIDs marks session-local files (query outputs) that must never
	// be logged or shipped: followers fill the ID gaps with placeholders
	// instead. Guarded by db.mu.Lock; file IDs are never reused.
	scratchFIDs map[pagefile.FileID]bool
}

// noteFileCreated records a file created outside any transaction so the next
// sync() can ship its creation to followers. Inside a transaction the Txn's
// newFiles list serves the same purpose. Called under db.mu.Lock.
func (db *DB) noteFileCreated(fid pagefile.FileID, name string) {
	if db.wal == nil {
		return
	}
	db.pendingFiles = append(db.pendingFiles, wal.FileCreate{FID: fid, Name: name})
}

// takeIdxErr returns and clears a deferred index-maintenance error.
func (db *DB) takeIdxErr() error {
	err := db.idxErr
	db.idxErr = nil
	return err
}

// catalogFileName is the catalog snapshot inside a file-backed database
// directory; its presence marks the directory as an existing database.
const catalogFileName = "catalog.json"

// Open creates a database. With a Dir that already holds a database
// (created by a previous Open/Close cycle), the database is reopened: the
// page files are reattached and the catalog restored.
func Open(cfg Config) (*DB, error) {
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 256
	}
	if cfg.PoolPages < btree.MinPoolFrames {
		return nil, fmt.Errorf("engine: pool of %d pages is below the B+tree minimum %d", cfg.PoolPages, btree.MinPoolFrames)
	}
	var store pagefile.Store
	var cat *catalog.Catalog
	reopen := false
	if cfg.Dir != "" {
		catPath := filepath.Join(cfg.Dir, catalogFileName)
		if data, err := os.ReadFile(catPath); err == nil {
			cat, err = catalog.Restore(data)
			if err != nil {
				return nil, fmt.Errorf("engine: restoring catalog: %w", err)
			}
			reopen = true
		}
	}
	switch {
	case cfg.Store != nil:
		store = cfg.Store
	case cfg.Dir == "":
		store = pagefile.NewMemStore()
	case reopen:
		fs, err := pagefile.OpenFileStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		store = fs
	default:
		fs, err := pagefile.NewFileStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		store = fs
	}
	// WAL recovery runs against the bare store, before the pool exists:
	// committed transactions a crash cut short are re-applied, and the last
	// committed catalog snapshot (always at least as new as catalog.json)
	// replaces the one read above.
	var walMgr *wal.Manager
	if cfg.Dir != "" && !cfg.WALDisabled {
		walPath := cfg.WALPath
		if walPath == "" {
			walPath = filepath.Join(cfg.Dir, "wal.log")
		}
		wm, rep, err := wal.Open(walPath, store, cfg.CommitInterval)
		if err != nil {
			store.Close()
			return nil, err
		}
		if rep.Catalog != nil {
			c, err := catalog.Restore(rep.Catalog)
			if err != nil {
				wm.Close()
				store.Close()
				return nil, fmt.Errorf("engine: restoring logged catalog: %w", err)
			}
			cat = c
			reopen = true
			if err := os.WriteFile(filepath.Join(cfg.Dir, catalogFileName), rep.Catalog, 0o644); err != nil {
				wm.Close()
				store.Close()
				return nil, err
			}
		}
		if rep.PagesApplied > 0 || rep.FilesCreated > 0 {
			if err := store.SyncAll(); err != nil {
				wm.Close()
				store.Close()
				return nil, err
			}
		}
		// The replayed state is durable; start from an empty log.
		if err := wm.Checkpoint(); err != nil {
			wm.Close()
			store.Close()
			return nil, err
		}
		walMgr = wm
	}
	if cat == nil {
		cat = catalog.New()
	}
	shards := cfg.PoolShards
	if shards < 1 {
		shards = 1
	}
	workers := cfg.ScanWorkers
	if workers < 1 {
		workers = 1
	}
	pool := buffer.NewSharded(store, cfg.PoolPages, shards)
	pool.SetReadahead(cfg.Readahead)
	if walMgr != nil {
		// Log-before-data: a dirty page may only be written back once the
		// log covering it is durable.
		pool.SetWriteBarrier(walMgr.EnsureDurablePage)
	}
	db := &DB{
		store:       store,
		pool:        pool,
		cat:         cat,
		dir:         cfg.Dir,
		workers:     workers,
		files:       map[pagefile.FileID]*heap.File{},
		trees:       map[string]*btree.Tree{},
		obs:         obs.NewRegistry(pagefile.PageSize),
		lockWait:    obs.NewHistogram(),
		wal:         walMgr,
		scratchFIDs: map[pagefile.FileID]bool{},
		setLocks:    newLockMgr(),
	}
	inlineMax := cfg.InlineMax
	if inlineMax == 0 {
		inlineMax = 1
	} else if inlineMax < 0 {
		inlineMax = 0
	}
	db.inlineMax = inlineMax
	db.mgr = core.New(db.cat, db, core.WithInlineMax(inlineMax), core.WithListener(db))
	if !cfg.AdvisorDisabled {
		db.advisor = advisor.New(advisor.Config{WindowOps: cfg.AdvisorWindowOps, Windows: cfg.AdvisorWindows})
		db.advisorCancel = db.obs.Subscribe(db.advisor.Observe)
	}
	if reopen {
		if err := db.rehydrate(); err != nil {
			if walMgr != nil {
				walMgr.Close()
			}
			store.Close()
			return nil, err
		}
	}
	return db, nil
}

// rehydrate reattaches heap files and indexes recorded in a restored catalog.
func (db *DB) rehydrate() error {
	openHeap := func(fid pagefile.FileID) error {
		if _, done := db.files[fid]; done {
			return nil
		}
		f, err := heap.Open(db.pool, fid)
		if err != nil {
			return err
		}
		db.files[fid] = f
		return nil
	}
	for _, s := range db.cat.Sets() {
		if err := openHeap(s.FileID); err != nil {
			return fmt.Errorf("engine: reopening set %s: %w", s.Name, err)
		}
	}
	for _, p := range db.cat.Paths() {
		links := p.Links
		if p.CollapsedLink != nil {
			links = append(links, p.CollapsedLink)
		}
		for _, l := range links {
			if l.HasFile {
				if err := openHeap(l.FileID); err != nil {
					return fmt.Errorf("engine: reopening link %d: %w", l.ID, err)
				}
			}
		}
		if p.Group != nil && p.Group.HasFile {
			if err := openHeap(p.Group.FileID); err != nil {
				return fmt.Errorf("engine: reopening S′ group %d: %w", p.Group.ID, err)
			}
		}
	}
	for _, s := range db.cat.Sets() {
		for _, ix := range db.cat.IndexesOn(s.Name) {
			if _, done := db.trees[ix.Name]; done {
				continue
			}
			tree, err := btree.Open(db.pool, ix.FileID)
			if err != nil {
				return fmt.Errorf("engine: reopening index %s: %w", ix.Name, err)
			}
			db.trees[ix.Name] = tree
		}
	}
	return nil
}

// Close flushes and releases the database, persisting the catalog snapshot
// for file-backed databases so they can be reopened. With a WAL, everything
// is made durable and the log is truncated, so reopening replays nothing.
func (db *DB) Close() error {
	// Replication components must stop before the lock is taken: the
	// follower applier acquires db.mu inside ApplyTxns, and the primary's
	// snapshot callback does too.
	db.closeRepl()
	if db.advisorCancel != nil {
		db.advisorCancel()
		db.advisorCancel = nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.store.SyncAll(); err != nil {
			return err
		}
	}
	if err := db.writeCatalog(); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.Checkpoint(); err != nil {
			return err
		}
		if err := db.wal.Close(); err != nil {
			return err
		}
	}
	return db.store.Close()
}

// writeCatalog persists the catalog snapshot of a file-backed database; it is
// a no-op for in-memory databases. With a WAL, the snapshot is first logged
// and forced: the log's last committed catalog is then always at least as
// new as catalog.json, so recovery can rewrite catalog.json from the log
// without ever regressing it.
func (db *DB) writeCatalog() error {
	if db.dir == "" {
		return nil
	}
	data, err := db.cat.Snapshot()
	if err != nil {
		return err
	}
	// A follower never appends to its own log: its LSN sequence is a copy of
	// the primary's, and a local commit would collide with streamed records.
	// Its catalog durability comes from the streamed RecCatalog records
	// already in the local log.
	if db.wal != nil && db.role.Load() != roleFollower {
		lsn, _, err := db.wal.AppendCommit(nil, nil, data)
		if err != nil {
			return err
		}
		if err := db.wal.WaitDurable(lsn); err != nil {
			return err
		}
	}
	return os.WriteFile(filepath.Join(db.dir, catalogFileName), data, 0o644)
}

// Sync makes the current state durable: all dirty buffered pages are written
// back, the underlying store is fsynced, and (for file-backed databases) the
// catalog snapshot is rewritten. After Sync returns, a crash loses nothing.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.sync()
}

// sync is Sync without the lock, for callers already holding it. With a WAL
// it is also the checkpoint: once the data files and catalog are durable the
// log no longer needs to cover them and is truncated.
func (db *DB) sync() error {
	if err := db.logShipDelta(); err != nil {
		return err
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.store.SyncAll(); err != nil {
		return err
	}
	if err := db.writeCatalog(); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.Checkpoint(); err != nil {
			return err
		}
	}
	// Everything pending is now either shipped (logShipDelta) or durable in
	// the store with the log checkpointed past it.
	db.pendingFiles = nil
	return nil
}

// logShipDelta ships what a DDL-style sync is about to flush. Local
// durability never needs it: FlushAll writes the pages and the filesystem
// already holds the created files, so the checkpoint can truncate the log.
// But while the WAL is being shipped, the catalog-only commit writeCatalog
// appends would reach followers referencing files and pages that never
// traveled through the log (checkpoint truncation is deferred for connected
// followers, so no snapshot resync saves them). So: when actively shipping,
// log a commit carrying the untransacted file creations and full images of
// every dirty non-scratch page, before the flush. Re-logging a page a DML
// commit already covered is redundant but harmless — apply is idempotent.
// Called under db.mu.Lock as part of sync().
func (db *DB) logShipDelta() error {
	if db.wal == nil || db.primary.Load() == nil || db.role.Load() == roleFollower {
		return nil
	}
	var images []wal.PageImage
	for _, pid := range db.pool.DirtyPages() {
		if db.scratchFIDs[pid.File] {
			continue
		}
		data, ok := db.pool.SnapshotPage(pid)
		if !ok {
			continue // raced out of residence; impossible under the writer lock
		}
		images = append(images, wal.PageImage{PID: pid, Data: data})
	}
	files := db.pendingFiles
	if len(files) == 0 && len(images) == 0 {
		return nil
	}
	if _, _, err := db.wal.AppendCommit(files, images, nil); err != nil {
		return err
	}
	// Stamp the logged LSNs into the resident frames so the images FlushAll
	// writes back match the logged ones, and the write barrier forces the log
	// through them first.
	for i := range images {
		db.pool.StampLSN(images[i].PID, images[i].LSN)
	}
	db.pendingFiles = nil
	return nil
}

// syncIfDurable runs sync for file-backed databases. DDL operations call it
// so that schema changes and their bulk builds survive a crash without an
// orderly Close; in-memory databases skip it to keep the experiments' page
// I/O counts undisturbed. Callers hold db.mu.
func (db *DB) syncIfDurable() error {
	if db.dir == "" {
		return nil
	}
	return db.sync()
}

// taint marks a set's derived replication state suspect after a
// mid-operation failure, persisting the marker immediately for file-backed
// databases so even a crash right after the failure leaves the need for
// repair on record. The cause is recorded with the first taint.
func (db *DB) taint(set string, cause error) {
	if db.txn != nil {
		// Transactional statements never taint: the whole transaction rolls
		// back physically, so there is no half-applied state to flag.
		return
	}
	db.cat.MarkTainted(set, cause.Error())
	// Best-effort: the store may be the very thing that is failing. The
	// in-memory marker still gates this session; Close persists it later.
	_ = db.writeCatalog()
}

// TaintedSets reports the sets whose derived replication state may be stale
// after a mid-operation failure, with the recorded causes. A successful
// Repair clears them.
func (db *DB) TaintedSets() map[string]string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cat.TaintedSets()
}

// Repair rebuilds all derived replication state from the primary objects
// (see core.Repair) and, when the post-repair verification comes back clean,
// clears the taint markers and makes the repaired state durable.
func (db *DB) Repair() (*core.RepairReport, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rep, err := db.mgr.Repair()
	if err != nil {
		return rep, err
	}
	if err := db.takeIdxErr(); err != nil {
		// An index-maintenance failure during repair propagation: the
		// replication state is fixed but an index may not be. Surface it and
		// keep the taint markers.
		return rep, err
	}
	if rep.Clean() {
		db.cat.ClearAllTaint()
	}
	if err := db.syncIfDurable(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Catalog exposes the system catalog (read-only use).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Manager exposes the replication manager (used by tests and the invariant
// checker).
func (db *DB) Manager() *core.Manager { return db.mgr }

// --- core.Storage implementation ---

// heapFor returns the heap file for fid, bound to the current writer's trace
// (no-op when no traced writer is running).
func (db *DB) heapFor(fid pagefile.FileID) (*heap.File, error) {
	f, ok := db.files[fid]
	if !ok {
		return nil, fmt.Errorf("engine: no heap file %d", fid)
	}
	return f.WithTrace(db.writerTrace), nil
}

// treeFor returns the named index tree bound to the current writer's trace.
func (db *DB) treeFor(name string) (*btree.Tree, bool) {
	t, ok := db.trees[name]
	if !ok {
		return nil, false
	}
	return t.WithTrace(db.writerTrace), true
}

// ReadObject implements core.Storage.
func (db *DB) ReadObject(oid pagefile.OID, typ *schema.Type) (*schema.Object, error) {
	return db.readObjectT(oid, typ, nil)
}

// readObjectT reads and decodes an object, charging page I/O to tr (in
// addition to the writer's trace when one is active).
func (db *DB) readObjectT(oid pagefile.OID, typ *schema.Type, tr *obs.Trace) (*schema.Object, error) {
	f, err := db.heapFor(oid.File)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		f = f.WithTrace(tr)
	}
	data, err := f.Read(oid)
	if err != nil {
		return nil, err
	}
	return schema.Decode(typ, data)
}

// WriteObject implements core.Storage.
func (db *DB) WriteObject(oid pagefile.OID, o *schema.Object) error {
	f, err := db.heapFor(oid.File)
	if err != nil {
		return err
	}
	return f.Update(oid, o.Encode())
}

// LinkFile implements core.Storage.
func (db *DB) LinkFile(l *catalog.Link) (*heap.File, error) {
	if l.HasFile {
		return db.heapFor(l.FileID)
	}
	f, err := heap.Create(db.pool, fmt.Sprintf("__link_%d", l.ID))
	if err != nil {
		return nil, err
	}
	l.FileID = f.ID()
	l.HasFile = true
	db.files[f.ID()] = f
	if t := db.txn; t != nil {
		t.fileCreated(f.ID(), fmt.Sprintf("__link_%d", l.ID), func() {
			l.HasFile = false
			l.FileID = 0
			delete(db.files, f.ID())
		})
	} else {
		db.noteFileCreated(f.ID(), fmt.Sprintf("__link_%d", l.ID))
	}
	return f.WithTrace(db.writerTrace), nil
}

// GroupFile implements core.Storage.
func (db *DB) GroupFile(g *catalog.Group) (*heap.File, error) {
	if g.HasFile {
		return db.heapFor(g.FileID)
	}
	f, err := heap.Create(db.pool, fmt.Sprintf("__sprime_%d", g.ID))
	if err != nil {
		return nil, err
	}
	g.FileID = f.ID()
	g.HasFile = true
	db.files[f.ID()] = f
	if t := db.txn; t != nil {
		t.fileCreated(f.ID(), fmt.Sprintf("__sprime_%d", g.ID), func() {
			g.HasFile = false
			g.FileID = 0
			delete(db.files, f.ID())
		})
	} else {
		db.noteFileCreated(f.ID(), fmt.Sprintf("__sprime_%d", g.ID))
	}
	return f.WithTrace(db.writerTrace), nil
}

// RecreateGroupFile implements core.Storage.
func (db *DB) RecreateGroupFile(g *catalog.Group) (*heap.File, error) {
	prevID, prevHas := g.FileID, g.HasFile
	f, err := heap.Create(db.pool, fmt.Sprintf("__sprime_%d_r", g.ID))
	if err != nil {
		return nil, err
	}
	g.FileID = f.ID()
	g.HasFile = true
	db.files[f.ID()] = f
	if t := db.txn; t != nil {
		t.fileCreated(f.ID(), fmt.Sprintf("__sprime_%d_r", g.ID), func() {
			g.FileID, g.HasFile = prevID, prevHas
			delete(db.files, f.ID())
		})
	} else {
		db.noteFileCreated(f.ID(), fmt.Sprintf("__sprime_%d_r", g.ID))
	}
	return f.WithTrace(db.writerTrace), nil
}

// SetFile implements core.Storage.
func (db *DB) SetFile(name string) (*heap.File, error) {
	s, ok := db.cat.SetByName(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchSet, name)
	}
	return db.heapFor(s.FileID)
}

// lockWriter acquires the engine's exclusive writer lock, recording how long
// acquisition blocked in the lock-wait histogram and charging it to tr (nil
// tr records only the histogram). Write entry points use it so writer-lock
// contention is visible per operation and in aggregate.
func (db *DB) lockWriter(tr *obs.Trace) {
	start := time.Now()
	db.mu.Lock()
	wait := time.Since(start)
	db.lockWait.Observe(wait)
	tr.LockWait(wait)
}

// waitDurable blocks in the WAL group-commit rendezvous until lsn is fsync'd,
// charging the wait to tr as log wait. lsn 0 (nothing logged) is a no-op.
// Callers must have released the writer lock so committers overlap in the
// wait and batch onto one fsync.
func (db *DB) waitDurable(lsn uint64, tr *obs.Trace) error {
	if lsn == 0 || db.wal == nil {
		return nil
	}
	start := time.Now()
	err := db.wal.WaitDurable(lsn)
	tr.LogWait(time.Since(start))
	if err == nil {
		// Semi-synchronous replication: when configured, wait (bounded) for
		// follower acks too. Called outside db.mu like the fsync wait, so
		// commits overlap in both rendezvous.
		db.waitReplicated(lsn)
	}
	return err
}

// --- I/O accounting and cache control ---

// IOStats is a snapshot of page-level I/O counters.
type IOStats struct {
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Allocs int64 `json:"allocs"`
}

// Total returns reads + writes.
func (s IOStats) Total() int64 { return s.Reads + s.Writes }

// Sub returns the delta s - t.
func (s IOStats) Sub(t IOStats) IOStats {
	return IOStats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Allocs: s.Allocs - t.Allocs}
}

// IO returns the cumulative page I/O counters of the underlying store. Only
// buffer misses and write-backs are counted, exactly the page transfers the
// cost model charges.
func (db *DB) IO() IOStats {
	st := db.store.Stats().Snapshot()
	return IOStats{Reads: st.Reads, Writes: st.Writes, Allocs: st.Allocs}
}

// ResetIO zeroes the I/O counters. It takes the writer lock so a reset can
// never land in the middle of a query and turn its delta negative; per-query
// measurement that must coexist with concurrency should use QueryTraced
// records instead of reset deltas.
func (db *DB) ResetIO() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store.Stats().Reset()
}

// ColdCache flushes and empties the buffer pool, so the next query starts
// cold — the measurement discipline that realizes the cost model's
// assumptions (each query reads each needed page exactly once).
func (db *DB) ColdCache() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pool.Reset()
}

// PoolStats exposes buffer pool counters.
func (db *DB) PoolStats() buffer.PoolStats { return db.pool.Stats() }

// WALStats reports cumulative write-ahead-log counters (records, commits,
// fsyncs, bytes, checkpoints). ok is false when the database runs without a
// WAL.
func (db *DB) WALStats() (wal.Stats, bool) {
	if db.wal == nil {
		return wal.Stats{}, false
	}
	return db.wal.Stats(), true
}

// NumPages returns the page count of a set's backing file.
func (db *DB) NumPages(set string) (uint32, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, err := db.SetFile(set)
	if err != nil {
		return 0, err
	}
	return f.NumPages()
}

// FlushAll writes back all dirty buffered pages.
func (db *DB) FlushAll() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pool.FlushAll()
}

// VerifyReplication runs the full replication invariant checker. It takes
// the exclusive lock: the checker cross-references primary objects, link
// structures, and S′ files, and a fine-grained writer committing between
// those reads would produce false positives.
func (db *DB) VerifyReplication() []error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.mgr.Verify()
}

// ErrNoSuchSet is returned for operations on unknown sets.
var ErrNoSuchSet = errors.New("engine: no such set")

// SetStats reports the physical statistics of a set's heap file. It takes
// the exclusive lock so the multi-page walk never interleaves with a
// fine-grained writer's commit.
func (db *DB) SetStats(set string) (heap.Stats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	f, err := db.SetFile(set)
	if err != nil {
		return heap.Stats{}, err
	}
	return f.Stats()
}
