package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/exodb/fieldrepl/internal/catalog"
	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// TestSoakEverything is a long randomized run with every feature active at
// once — all strategies, collapsing, deferral, path and base indexes,
// teardown/rebuild, bulk updates, and queries cross-checked between indexed
// and scan plans — verifying the replication invariant throughout.
func TestSoakEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	db := openEmployeeDB(t, Config{PoolPages: 2048})
	rng := rand.New(rand.NewSource(8191))

	var orgs, depts, emps []pagefile.OID
	for i := 0; i < 8; i++ {
		oid, err := db.Insert("Org", map[string]schema.Value{
			"name": str(fmt.Sprintf("org-%02d", i)), "budget": num(int64(i * 10)),
		})
		if err != nil {
			t.Fatal(err)
		}
		orgs = append(orgs, oid)
	}
	for i := 0; i < 24; i++ {
		oid, err := db.Insert("Dept", map[string]schema.Value{
			"name": str(fmt.Sprintf("dept-%02d", i)), "budget": num(int64(i)),
			"org": ref(orgs[rng.Intn(len(orgs))]),
		})
		if err != nil {
			t.Fatal(err)
		}
		depts = append(depts, oid)
	}
	for i := 0; i < 150; i++ {
		oid, err := db.Insert("Emp1", map[string]schema.Value{
			"name": str(fmt.Sprintf("emp-%04d", i)), "age": num(int64(20 + i%45)),
			"salary": num(int64(40000 + i*137)), "dept": ref(depts[rng.Intn(len(depts))]),
		})
		if err != nil {
			t.Fatal(err)
		}
		emps = append(emps, oid)
	}
	var emps2 []pagefile.OID
	for i := 0; i < 30; i++ {
		oid, err := db.Insert("Emp2", map[string]schema.Value{
			"name": str(fmt.Sprintf("e2-%04d", i)), "age": num(int64(20 + i%45)),
			"salary": num(int64(40000 + i*211)), "dept": ref(depts[rng.Intn(len(depts))]),
		})
		if err != nil {
			t.Fatal(err)
		}
		emps2 = append(emps2, oid)
	}
	if err := db.BuildIndex("soak_salary", "Emp1", "salary", false); err != nil {
		t.Fatal(err)
	}

	type pathToggle struct {
		path   string
		strat  catalog.Strategy
		opts   []catalog.PathOption
		active bool
	}
	paths := []*pathToggle{
		{path: "Emp1.dept.name", strat: catalog.InPlace},
		{path: "Emp1.dept.budget", strat: catalog.Separate},
		{path: "Emp1.dept.org.name", strat: catalog.InPlace, opts: []catalog.PathOption{catalog.WithDeferred()}},
		{path: "Emp1.dept.org.budget", strat: catalog.Separate},
		{path: "Emp2.dept.org.name", strat: catalog.InPlace, opts: []catalog.PathOption{catalog.WithCollapsed()}},
	}
	pathIndexBuilt := false

	verify := func(step int) {
		t.Helper()
		if errs := db.VerifyReplication(); len(errs) > 0 {
			for _, e := range errs {
				t.Error(e)
			}
			t.Fatalf("step %d: invariant violated", step)
		}
	}
	crossCheck := func(step int) {
		t.Helper()
		lo := int64(40000 + rng.Intn(15000))
		where := &Pred{Expr: "salary", Op: OpBetween, Value: num(lo), Value2: num(lo + 5000)}
		q := Query{Set: "Emp1", Project: []string{"name", "dept.name", "dept.org.name"}, Where: where}
		idx, err := db.Query(q)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		q.ForceScan = true
		scan, err := db.Query(q)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(idx.Rows) != len(scan.Rows) {
			t.Fatalf("step %d: index plan %d rows, scan plan %d rows", step, len(idx.Rows), len(scan.Rows))
		}
		byOID := map[pagefile.OID][]schema.Value{}
		for _, r := range scan.Rows {
			byOID[r.OID] = r.Values
		}
		for _, r := range idx.Rows {
			want, ok := byOID[r.OID]
			if !ok {
				t.Fatalf("step %d: index-only row %v", step, r.OID)
			}
			for i := range want {
				if !r.Values[i].Equal(want[i]) {
					t.Fatalf("step %d: plans disagree at %v col %d: %v vs %v", step, r.OID, i, r.Values[i], want[i])
				}
			}
		}
	}

	n := 0
	const steps = 1200
	for step := 0; step < steps; step++ {
		switch rng.Intn(12) {
		case 0: // toggle a replication path
			p := paths[rng.Intn(len(paths))]
			if p.active {
				if p.path == "Emp1.dept.org.name" && pathIndexBuilt {
					if err := db.DropIndex("soak_orgname"); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					pathIndexBuilt = false
				}
				if err := db.Unreplicate(p.path, p.strat); err != nil {
					t.Fatalf("step %d: unreplicate %s: %v", step, p.path, err)
				}
				p.active = false
			} else {
				if err := db.Replicate(p.path, p.strat, p.opts...); err != nil {
					t.Fatalf("step %d: replicate %s: %v", step, p.path, err)
				}
				p.active = true
			}
		case 1: // toggle the path index when its path is active
			if paths[2].active && !pathIndexBuilt {
				if err := db.BuildIndex("soak_orgname", "Emp1", "dept.org.name", false); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				pathIndexBuilt = true
			} else if pathIndexBuilt {
				if err := db.DropIndex("soak_orgname"); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				pathIndexBuilt = false
			}
		case 2:
			n++
			oid, err := db.Insert("Emp1", map[string]schema.Value{
				"name": str(fmt.Sprintf("new-%04d", n)), "age": num(int64(rng.Intn(60))),
				"salary": num(int64(40000 + rng.Intn(25000))), "dept": ref(depts[rng.Intn(len(depts))]),
			})
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			emps = append(emps, oid)
		case 3:
			if len(emps) < 20 {
				continue
			}
			i := rng.Intn(len(emps))
			if err := db.Delete("Emp1", emps[i]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			emps = append(emps[:i], emps[i+1:]...)
		case 4:
			target := ref(depts[rng.Intn(len(depts))])
			if rng.Intn(10) == 0 && !paths[4].active {
				// Null refs only while the collapsed path is down.
				target = ref(pagefile.NilOID)
			}
			if err := db.Update("Emp1", emps[rng.Intn(len(emps))], map[string]schema.Value{"dept": target}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case 5:
			if err := db.Update("Dept", depts[rng.Intn(len(depts))], map[string]schema.Value{"org": ref(orgs[rng.Intn(len(orgs))])}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case 6:
			n++
			if err := db.Update("Dept", depts[rng.Intn(len(depts))], map[string]schema.Value{
				"name": str(fmt.Sprintf("dr-%04d", n)), "budget": num(int64(rng.Intn(500))),
			}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case 7:
			n++
			if err := db.Update("Org", orgs[rng.Intn(len(orgs))], map[string]schema.Value{
				"name": str(fmt.Sprintf("or-%04d", n)), "budget": num(int64(rng.Intn(500))),
			}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case 8:
			if _, err := db.UpdateWhere("Emp1",
				Pred{Expr: "age", Op: OpEQ, Value: num(int64(20 + rng.Intn(45)))},
				map[string]schema.Value{"salary": num(int64(40000 + rng.Intn(25000)))}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case 9:
			// Emp2 traffic exercises the collapsed path (never null refs).
			if rng.Intn(2) == 0 && len(emps2) > 5 {
				if err := db.Update("Emp2", emps2[rng.Intn(len(emps2))], map[string]schema.Value{"dept": ref(depts[rng.Intn(len(depts))])}); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			} else {
				if err := db.FlushReplication(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		case 10:
			if rng.Intn(3) == 0 {
				if err := db.ColdCache(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			crossCheck(step)
		default:
			if _, err := db.Query(Query{
				Set:     "Emp1",
				Project: []string{"name", "dept.name", "dept.budget", "dept.org.name", "dept.org.budget"},
				Where:   &Pred{Expr: "age", Op: OpGE, Value: num(int64(rng.Intn(60)))},
				Filters: []Pred{{Expr: "salary", Op: OpGE, Value: num(40000)}},
			}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		if step%100 == 99 {
			verify(step)
		}
	}
	verify(steps)
	crossCheck(steps)
}
