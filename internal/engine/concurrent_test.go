package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/exodb/fieldrepl/internal/schema"
)

// rowKey flattens a result row into a comparable string (OID + projected
// values), so result sets can be compared as multisets.
func rowKey(r Row) string {
	s := r.OID.String()
	for _, v := range r.Values {
		s += "|" + v.String()
	}
	return s
}

func sortedKeys(res *Result) []string {
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = rowKey(r)
	}
	sort.Strings(keys)
	return keys
}

// TestParallelQueryEquivalence runs the same non-indexed queries on a
// sequential engine and on one with scan workers and a sharded pool; the
// row multisets must match.
func TestParallelQueryEquivalence(t *testing.T) {
	seqDB := openEmployeeDB(t, Config{})
	parDB := openEmployeeDB(t, Config{ScanWorkers: 4, PoolShards: 8, Readahead: 4})
	populate(t, seqDB, 2, 6, 300)
	populate(t, parDB, 2, 6, 300)

	queries := []Query{
		{Set: "Emp1", Project: []string{"name", "salary"}},
		{Set: "Emp1", Project: []string{"name"}, Where: &Pred{Expr: "salary", Op: OpGT, Value: num(200000)}},
		{Set: "Emp1", Project: []string{"name", "age"}, Where: &Pred{Expr: "age", Op: OpEQ, Value: num(25)}},
		{Set: "Dept", Project: []string{"name", "budget"}},
	}
	for i, q := range queries {
		qs, err := seqDB.Query(q)
		if err != nil {
			t.Fatalf("query %d sequential: %v", i, err)
		}
		qp, err := parDB.Query(q)
		if err != nil {
			t.Fatalf("query %d parallel: %v", i, err)
		}
		if qp.UsedIndex != "" || qs.UsedIndex != "" {
			t.Fatalf("query %d used an index; this test covers the scan path", i)
		}
		sk, pk := sortedKeys(qs), sortedKeys(qp)
		if len(sk) != len(pk) {
			t.Fatalf("query %d: sequential %d rows, parallel %d rows", i, len(sk), len(pk))
		}
		for j := range sk {
			if sk[j] != pk[j] {
				t.Fatalf("query %d row %d: %q != %q", i, j, sk[j], pk[j])
			}
		}
	}
}

// TestParallelUpdateWhereEquivalence applies the same predicate update on
// sequential and parallel engines and compares the resulting table contents.
func TestParallelUpdateWhereEquivalence(t *testing.T) {
	seqDB := openEmployeeDB(t, Config{})
	parDB := openEmployeeDB(t, Config{ScanWorkers: 4, PoolShards: 4})
	populate(t, seqDB, 2, 6, 200)
	populate(t, parDB, 2, 6, 200)

	where := Pred{Expr: "age", Op: OpGT, Value: num(40)}
	vals := map[string]schema.Value{"salary": num(99)}
	nSeq, err := seqDB.UpdateWhere("Emp1", where, vals)
	if err != nil {
		t.Fatal(err)
	}
	nPar, err := parDB.UpdateWhere("Emp1", where, vals)
	if err != nil {
		t.Fatal(err)
	}
	if nSeq != nPar || nSeq == 0 {
		t.Fatalf("UpdateWhere matched %d sequential vs %d parallel rows", nSeq, nPar)
	}
	q := Query{Set: "Emp1", Project: []string{"name", "age", "salary"}}
	qs, err := seqDB.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := parDB.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	sk, pk := sortedKeys(qs), sortedKeys(qp)
	for j := range sk {
		if sk[j] != pk[j] {
			t.Fatalf("row %d after UpdateWhere: %q != %q", j, sk[j], pk[j])
		}
	}
	verifyDB(t, seqDB)
	verifyDB(t, parDB)
}

// TestConcurrentReadersAndWriter soaks the reader/writer locking: parallel
// query goroutines run against a writer that inserts, updates, and deletes.
// Run under -race this exercises the engine lock discipline end to end;
// every query must see a consistent row count (no torn scans).
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := openEmployeeDB(t, Config{ScanWorkers: 4, PoolShards: 8, PoolPages: 512})
	st := populate(t, db, 2, 6, 150)

	iters := 40
	if testing.Short() {
		iters = 10
	}
	const readers = 4
	var wg sync.WaitGroup
	var fail atomic.Value
	stop := make(chan struct{})

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Query(Query{
					Set: "Emp1", Project: []string{"name", "salary"},
					Where: &Pred{Expr: "age", Op: OpGT, Value: num(int64(20 + (g+i)%30))},
				})
				if err != nil {
					fail.Store(fmt.Errorf("reader %d: %w", g, err))
					return
				}
				// Each record's projection must be internally consistent.
				for _, r := range res.Rows {
					if len(r.Values) != 2 {
						fail.Store(fmt.Errorf("reader %d: row with %d values", g, len(r.Values)))
						return
					}
				}
				if _, err := db.Count("Emp1"); err != nil {
					fail.Store(err)
					return
				}
			}
		}(g)
	}

	for i := 0; i < iters && fail.Load() == nil; i++ {
		oid, err := db.Insert("Emp1", map[string]schema.Value{
			"name": str(fmt.Sprintf("w-%03d", i)), "age": num(int64(20 + i%40)),
			"salary": num(int64(70000 + i)), "dept": ref(st.depts[i%len(st.depts)]),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Update("Emp1", oid, map[string]schema.Value{"salary": num(int64(80000 + i))}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := db.Delete("Emp1", oid); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := fail.Load(); err != nil {
		t.Fatal(err)
	}
	verifyDB(t, db)
}

// BenchmarkConcurrentReaders measures query throughput with N goroutines
// issuing non-indexed scans against a sharded pool, the workload the
// reader/writer lock and pool sharding exist to serve.
func BenchmarkConcurrentReaders(b *testing.B) {
	for _, readers := range []int{1, 4} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			db, err := Open(Config{ScanWorkers: 1, PoolShards: 8, PoolPages: 512})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			defineEmployeeSchemaB(b, db)
			for i := 0; i < 2000; i++ {
				if _, err := db.Insert("Emp1", map[string]schema.Value{
					"name": str(fmt.Sprintf("emp-%04d", i)), "age": num(int64(20 + i%40)),
					"salary": num(int64(50000 + i)),
				}); err != nil {
					b.Fatal(err)
				}
			}
			q := Query{Set: "Emp1", Project: []string{"name"},
				Where: &Pred{Expr: "salary", Op: OpGT, Value: num(51500)}}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/readers + 1
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := db.Query(q); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// defineEmployeeSchemaB is defineEmployeeSchema for benchmarks (EMP only,
// no ref fields, so inserts need no dept).
func defineEmployeeSchemaB(b *testing.B, db *DB) {
	b.Helper()
	if err := db.DefineType("EMP", []schema.Field{
		{Name: "name", Kind: schema.KindString},
		{Name: "age", Kind: schema.KindInt},
		{Name: "salary", Kind: schema.KindInt},
	}); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateSet("Emp1", "EMP"); err != nil {
		b.Fatal(err)
	}
}
