package exp

import (
	"fmt"
	"strings"
)

// plot geometry: x spans p_update 0..1, y spans the percentage difference,
// cut off at +50 and -100 like the paper's axes.
const (
	plotWidth  = 61
	plotHeight = 31
	plotYMax   = 50.0
	plotYMin   = -100.0
)

// seriesGlyphs assigns one character per series, in the order NewSweep emits
// them: in-place fr = .001/.002/.005 then separate fr = .001/.002/.005.
var seriesGlyphs = []byte{'i', 'I', 'X', 's', 'S', 'Z'}

// ASCIIPlot renders the sweep as a text graph in the style of Figures 11
// and 13: percentage difference in total I/O cost (negative = cheaper than
// no replication) versus update probability.
func (sw Sweep) ASCIIPlot() string {
	grid := make([][]byte, plotHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotWidth))
	}
	// The horizontal zero line represents no replication.
	zeroRow := yToRow(0)
	for x := 0; x < plotWidth; x++ {
		grid[zeroRow][x] = '-'
	}
	for si, s := range sw.Series {
		glyph := byte('?')
		if si < len(seriesGlyphs) {
			glyph = seriesGlyphs[si]
		}
		for i, pu := range sw.PUpdates {
			v := s.Values[i]
			if v > plotYMax {
				v = plotYMax
			}
			if v < plotYMin {
				v = plotYMin
			}
			x := int(pu*float64(plotWidth-1) + 0.5)
			grid[yToRow(v)][x] = glyph
		}
	}
	var sb strings.Builder
	sb.WriteString(sw.Title() + "\n")
	sb.WriteString("  %diff in C_total vs no replication (cut off at +50 / -100)\n")
	for row := 0; row < plotHeight; row++ {
		label := "      "
		switch row {
		case yToRow(plotYMax):
			label = "  +50 "
		case zeroRow:
			label = "    0 "
		case yToRow(-50):
			label = "  -50 "
		case yToRow(plotYMin):
			label = " -100 "
		}
		sb.WriteString(label)
		sb.WriteString("|")
		sb.Write(grid[row])
		sb.WriteByte('\n')
	}
	sb.WriteString("      +")
	sb.WriteString(strings.Repeat("-", plotWidth))
	sb.WriteByte('\n')
	sb.WriteString("       0        .2        .4        .6        .8        1.0\n")
	sb.WriteString("                      Update Probability\n")
	sb.WriteString("  legend:")
	for si, s := range sw.Series {
		if si < len(seriesGlyphs) {
			fmt.Fprintf(&sb, "  %c=%s", seriesGlyphs[si], s.Label)
		}
		if si == 2 {
			sb.WriteString("\n         ")
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}

func yToRow(v float64) int {
	frac := (plotYMax - v) / (plotYMax - plotYMin)
	row := int(frac*float64(plotHeight-1) + 0.5)
	if row < 0 {
		row = 0
	}
	if row >= plotHeight {
		row = plotHeight - 1
	}
	return row
}
