package exp

import (
	"strings"
	"testing"

	"github.com/exodb/fieldrepl/internal/costmodel"
	"github.com/exodb/fieldrepl/internal/workload"
)

func TestFigure10Table(t *testing.T) {
	out := Figure10Table()
	for _, want := range []string{"4056", "350", "10000", "20 bytes", "B+tree fanout"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 10 table lacks %q:\n%s", want, out)
		}
	}
}

func TestFigureTablesContainPaperValues(t *testing.T) {
	out12 := Figure12Table()
	for _, want := range []string{"43", "691", "407", "427", "509"} {
		if !strings.Contains(out12, want) {
			t.Errorf("Figure 12 table lacks %q:\n%s", want, out12)
		}
	}
	out14 := Figure14Table()
	for _, want := range []string{"24", "316", "400", "133"} {
		if !strings.Contains(out14, want) {
			t.Errorf("Figure 14 table lacks %q:\n%s", want, out14)
		}
	}
}

func TestSweepSeries(t *testing.T) {
	sw := NewSweep(costmodel.Unclustered, 20, 20)
	if len(sw.Series) != 6 {
		t.Fatalf("series = %d, want 6 (2 strategies x 3 selectivities)", len(sw.Series))
	}
	if len(sw.PUpdates) != 21 {
		t.Fatalf("points = %d", len(sw.PUpdates))
	}
	for _, s := range sw.Series {
		if len(s.Values) != len(sw.PUpdates) {
			t.Fatalf("series %s has %d values", s.Label, len(s.Values))
		}
		// At P=0 every replication strategy is beneficial at f=20.
		if s.Values[0] >= 0 {
			t.Errorf("series %s starts at %v, expected negative", s.Label, s.Values[0])
		}
		// In-place must end up positive (expensive) at P=1, f=20.
		if s.Strategy == costmodel.InPlace && s.Values[len(s.Values)-1] <= 0 {
			t.Errorf("series %s ends at %v, expected positive", s.Label, s.Values[len(s.Values)-1])
		}
	}
	if sw.RCount != 200000 {
		t.Fatalf("|R| = %v", sw.RCount)
	}
	if !strings.Contains(sw.Title(), "f = 20") {
		t.Fatalf("title = %q", sw.Title())
	}
}

func TestFigureSweepSets(t *testing.T) {
	f11 := Figure11(10)
	f13 := Figure13(10)
	if len(f11) != 4 || len(f13) != 4 {
		t.Fatalf("figure sweeps = %d, %d; want 4 graphs each", len(f11), len(f13))
	}
	// Clustered savings are larger: compare in-place fr=.002 at P=0.1, f=10.
	idx := 1  // series order: inplace .001, inplace .002, ...
	pidx := 1 // P = 0.1 with 10 steps
	if f13[1].Series[idx].Values[pidx] >= f11[1].Series[idx].Values[pidx] {
		t.Errorf("clustered diff %v not below unclustered %v",
			f13[1].Series[idx].Values[pidx], f11[1].Series[idx].Values[pidx])
	}
}

func TestASCIIPlotAndCSV(t *testing.T) {
	sw := NewSweep(costmodel.Clustered, 10, 20)
	plot := sw.ASCIIPlot()
	for _, want := range []string{"Clustered Access, f = 10", "Update Probability", "legend:", "i=", "S="} {
		if !strings.Contains(plot, want) {
			t.Errorf("plot lacks %q", want)
		}
	}
	lines := strings.Split(plot, "\n")
	if len(lines) < plotHeight {
		t.Fatalf("plot has %d lines", len(lines))
	}
	csv := sw.CSV()
	if !strings.HasPrefix(csv, "p_update,") {
		t.Fatalf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if rows := strings.Count(csv, "\n"); rows != 22 { // header + 21 points
		t.Fatalf("csv rows = %d", rows)
	}
}

// TestValidateShapes runs the engine-vs-model comparison at a small scale
// and asserts the paper's shape claims hold in the measurements, and that
// measured values are within a factor of the model's predictions.
func TestValidateShapes(t *testing.T) {
	rows, err := Validate(ValidationSpec{SCount: 400, F: 6, Fr: 0.01, Fs: 0.005, Queries: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byStrat := map[workload.Strategy]ValidationRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = r
	}
	none, inp, sep := byStrat[workload.NoReplication], byStrat[workload.InPlace], byStrat[workload.Separate]
	// Reads: in-place <= separate < none in measurement (at this small scale
	// in-place and separate can land within a page or two of each other).
	if !(inp.ReadMeasured <= sep.ReadMeasured+2 && sep.ReadMeasured < none.ReadMeasured && inp.ReadMeasured < none.ReadMeasured) {
		t.Errorf("measured read ordering: %v %v %v", inp.ReadMeasured, sep.ReadMeasured, none.ReadMeasured)
	}
	if !(inp.ReadModel < sep.ReadModel && sep.ReadModel < none.ReadModel) {
		t.Errorf("model read ordering: %v %v %v", inp.ReadModel, sep.ReadModel, none.ReadModel)
	}
	// Updates: none < separate < in-place.
	if !(none.UpdateMeasured < sep.UpdateMeasured && sep.UpdateMeasured < inp.UpdateMeasured) {
		t.Errorf("measured update ordering: %v %v %v", none.UpdateMeasured, sep.UpdateMeasured, inp.UpdateMeasured)
	}
	// Measured within a factor of the model (the engine is not the model's
	// idealized machine, but it is the same order of magnitude).
	for _, r := range rows {
		if ratio := r.ReadMeasured / r.ReadModel; ratio < 0.3 || ratio > 3 {
			t.Errorf("%v read ratio measured/model = %.2f", r.Strategy, ratio)
		}
	}
	out := FormatValidation(rows)
	if !strings.Contains(out, "in-place") || !strings.Contains(out, "read meas.") {
		t.Errorf("FormatValidation output:\n%s", out)
	}
}

func TestMeasureSpace(t *testing.T) {
	rows, err := MeasureSpace(400, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, inp, sep := rows[0], rows[1], rows[2]
	if none.LinkPages != 0 || none.SPrimePages != 0 {
		t.Fatalf("baseline has auxiliary storage: %+v", none)
	}
	// In-place widens R (hidden values); separate adds the S′ file.
	if inp.RPages <= none.RPages {
		t.Fatalf("in-place did not widen R: %d vs %d", inp.RPages, none.RPages)
	}
	if sep.SPrimePages == 0 {
		t.Fatalf("separate has no S′ pages: %+v", sep)
	}
	// Overheads are positive but modest (the paper's assumption that the
	// space cost is tolerable).
	for _, r := range rows[1:] {
		ov := r.Overhead(none)
		if ov <= 0 || ov > 60 {
			t.Fatalf("%v overhead = %.1f%%, outside sanity band", r.Strategy, ov)
		}
	}
	out := FormatSpace(rows)
	if !strings.Contains(out, "overhead") {
		t.Fatalf("FormatSpace output:\n%s", out)
	}
}

func TestValidateTwoLevel(t *testing.T) {
	rows, err := ValidateTwoLevel(2000, 5, 4, 0.01, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Model and measurement agree on the ordering and roughly on magnitude.
	for _, r := range rows {
		if ratio := r.ReadMeasured / r.ReadModel; ratio < 0.3 || ratio > 3 {
			t.Errorf("%v: measured/model = %.2f (%v / %v)", r.Strategy, ratio, r.ReadMeasured, r.ReadModel)
		}
	}
	// At this scale in-place and separate can tie within a page or two.
	if !(rows[1].ReadMeasured <= rows[2].ReadMeasured+2 && rows[2].ReadMeasured < rows[0].ReadMeasured && rows[1].ReadMeasured < rows[0].ReadMeasured) {
		t.Errorf("measured ordering: %+v", rows)
	}
	if !(rows[1].ReadModel < rows[2].ReadModel && rows[2].ReadModel < rows[0].ReadModel) {
		t.Errorf("model ordering: %+v", rows)
	}
	out := FormatNLevel(rows, 2000, 5, 4)
	if !strings.Contains(out, "2-level path validation") {
		t.Errorf("FormatNLevel:\n%s", out)
	}
}
