package exp

import (
	"fmt"
	"math"
	"strings"

	"github.com/exodb/fieldrepl/internal/costmodel"
	"github.com/exodb/fieldrepl/internal/workload"
)

// ValidationRow compares the analytical model against the running engine for
// one (strategy, setting) cell.
type ValidationRow struct {
	Strategy       workload.Strategy
	Clustered      bool
	F              int
	SCount         int
	ReadModel      float64
	ReadMeasured   float64
	UpdateModel    float64
	UpdateMeasured float64
}

// modelStrategy maps a workload strategy onto the model's.
func modelStrategy(s workload.Strategy) costmodel.Strategy {
	switch s {
	case workload.InPlace:
		return costmodel.InPlace
	case workload.Separate:
		return costmodel.Separate
	default:
		return costmodel.NoReplication
	}
}

// ValidationSpec scopes an engine-vs-model validation run.
type ValidationSpec struct {
	SCount    int
	F         int
	Fr, Fs    float64
	Clustered bool
	Queries   int // queries averaged per measurement
	Seed      int64
}

// Validate builds the model database at the spec's scale for each strategy,
// measures average read- and update-query page I/O on the engine, and pairs
// the measurements with the analytical predictions at the same parameters.
func Validate(spec ValidationSpec) ([]ValidationRow, error) {
	if spec.Queries == 0 {
		spec.Queries = 5
	}
	if spec.Fr == 0 {
		spec.Fr = 0.01
	}
	if spec.Fs == 0 {
		spec.Fs = 0.005
	}
	var rows []ValidationRow
	for _, strat := range []workload.Strategy{workload.NoReplication, workload.InPlace, workload.Separate} {
		b, err := workload.Build(workload.Spec{
			SCount: spec.SCount, F: spec.F,
			Clustered: spec.Clustered, Strategy: strat, Seed: spec.Seed,
		})
		if err != nil {
			return nil, err
		}
		read, err := b.AvgReadIO(spec.Queries, spec.Fr)
		if err != nil {
			b.Close()
			return nil, err
		}
		upd, err := b.AvgUpdateIO(spec.Queries, spec.Fs)
		if err != nil {
			b.Close()
			return nil, err
		}
		b.Close()

		p := costmodel.Default()
		p.SCount = float64(spec.SCount)
		p.F = float64(spec.F)
		p.Fr, p.Fs = spec.Fr, spec.Fs
		setting := costmodel.Unclustered
		if spec.Clustered {
			setting = costmodel.Clustered
		}
		st := modelStrategy(strat)
		rows = append(rows, ValidationRow{
			Strategy:       strat,
			Clustered:      spec.Clustered,
			F:              spec.F,
			SCount:         spec.SCount,
			ReadModel:      math.Ceil(p.ReadCost(st, setting)),
			ReadMeasured:   read,
			UpdateModel:    math.Ceil(p.UpdateCost(st, setting)),
			UpdateMeasured: upd,
		})
	}
	return rows, nil
}

// FormatValidation renders validation rows as a text table.
func FormatValidation(rows []ValidationRow) string {
	var sb strings.Builder
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	setting := "unclustered"
	if rows[0].Clustered {
		setting = "clustered"
	}
	fmt.Fprintf(&sb, "Engine vs model (|S|=%d, f=%d, %s indexes)\n\n", rows[0].SCount, rows[0].F, setting)
	fmt.Fprintf(&sb, "  %-10s | %11s %11s | %11s %11s\n", "strategy", "read model", "read meas.", "upd model", "upd meas.")
	fmt.Fprintf(&sb, "  %s\n", strings.Repeat("-", 64))
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s | %11.0f %11.1f | %11.0f %11.1f\n",
			r.Strategy, r.ReadModel, r.ReadMeasured, r.UpdateModel, r.UpdateMeasured)
	}
	return sb.String()
}

// SpaceRow reports the storage footprint of one strategy at one sharing
// level: the paper's §4.2 space-overhead discussion, measured.
type SpaceRow struct {
	Strategy    workload.Strategy
	F           int
	RPages      uint32
	SPages      uint32
	LinkPages   uint32
	SPrimePages uint32
}

// Overhead returns the auxiliary+widening storage relative to the
// no-replication R+S footprint, in percent. base is the no-replication row.
func (r SpaceRow) Overhead(base SpaceRow) float64 {
	baseTotal := float64(base.RPages + base.SPages)
	total := float64(r.RPages + r.SPages + r.LinkPages + r.SPrimePages)
	return 100 * (total - baseTotal) / baseTotal
}

// MeasureSpace builds the model database per strategy and reports page
// footprints.
func MeasureSpace(sCount, f int, seed int64) ([]SpaceRow, error) {
	var rows []SpaceRow
	for _, strat := range []workload.Strategy{workload.NoReplication, workload.InPlace, workload.Separate} {
		b, err := workload.Build(workload.Spec{SCount: sCount, F: f, Strategy: strat, Seed: seed})
		if err != nil {
			return nil, err
		}
		row := SpaceRow{Strategy: strat, F: f}
		if n, err := b.DB.NumPages("R"); err == nil {
			row.RPages = n
		}
		if n, err := b.DB.NumPages("S"); err == nil {
			row.SPages = n
		}
		storage, err := b.DB.ReplicationStorage()
		if err != nil {
			b.Close()
			return nil, err
		}
		for _, st := range storage {
			row.LinkPages += st.LinkPages
			row.SPrimePages += st.SPrimePages
		}
		b.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSpace renders space rows as a text table.
func FormatSpace(rows []SpaceRow) string {
	var sb strings.Builder
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	fmt.Fprintf(&sb, "Space overhead (paper §4.2), f=%d\n\n", rows[0].F)
	fmt.Fprintf(&sb, "  %-10s | %7s %7s %7s %7s | %9s\n", "strategy", "R pgs", "S pgs", "link", "S'", "overhead")
	fmt.Fprintf(&sb, "  %s\n", strings.Repeat("-", 62))
	base := rows[0]
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s | %7d %7d %7d %7d | %8.1f%%\n",
			r.Strategy, r.RPages, r.SPages, r.LinkPages, r.SPrimePages, r.Overhead(base))
	}
	return sb.String()
}

// NLevelRow compares the n-level model extension against a measured 2-level
// read query.
type NLevelRow struct {
	Strategy     workload.Strategy
	ReadModel    float64
	ReadMeasured float64
}

// ValidateTwoLevel measures 2-level read queries per strategy and pairs them
// with the n-level analytical extension at the same parameters.
func ValidateTwoLevel(rCount, f, g int, fr float64, queries int, seed int64) ([]NLevelRow, error) {
	if queries == 0 {
		queries = 3
	}
	var rows []NLevelRow
	for _, strat := range []workload.Strategy{workload.NoReplication, workload.InPlace, workload.Separate} {
		b, err := workload.BuildTwoLevel(workload.TwoLevelSpec{
			RCount: rCount, F: f, G: g, Strategy: strat, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		meas, err := b.AvgReadIO(queries, fr)
		if err != nil {
			b.Close()
			return nil, err
		}
		b.Close()

		np := costmodel.DefaultNLevel(float64(rCount), float64(f), float64(g))
		np.Fr = fr
		model, err := np.NLevelReadCost(modelStrategy(strat))
		if err != nil {
			return nil, err
		}
		rows = append(rows, NLevelRow{Strategy: strat, ReadModel: model, ReadMeasured: meas})
	}
	return rows, nil
}

// FormatNLevel renders the 2-level validation as a text table.
func FormatNLevel(rows []NLevelRow, rCount, f, g int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "2-level path validation (|R|=%d, f=%d, g=%d): n-level model vs engine\n\n", rCount, f, g)
	fmt.Fprintf(&sb, "  %-10s | %11s %11s\n", "strategy", "read model", "read meas.")
	fmt.Fprintf(&sb, "  %s\n", strings.Repeat("-", 38))
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s | %11.0f %11.1f\n", r.Strategy, r.ReadModel, r.ReadMeasured)
	}
	return sb.String()
}
