// Package exp regenerates every table and figure of the paper's evaluation
// (Section 6): the Figure 10 parameter table, the Figure 11/13 percentage-
// difference graphs, the Figure 12/14 selected-cost tables — all from the
// analytical model — plus an engine-measured validation that compares the
// running system's page I/O against the model's predictions.
package exp

import (
	"fmt"
	"math"
	"strings"

	"github.com/exodb/fieldrepl/internal/costmodel"
)

// paperFr are the read selectivities plotted in Figures 11 and 13.
var paperFr = []float64{0.001, 0.002, 0.005}

// paperF are the sharing levels of the four graphs in Figures 11 and 13.
var paperF = []float64{1, 10, 20, 50}

// Figure10Table renders the cost-model parameter table.
func Figure10Table() string {
	p := costmodel.Default()
	var sb strings.Builder
	sb.WriteString("Figure 10: The Parameters of the Cost Model\n\n")
	w := func(name, def, val string) {
		fmt.Fprintf(&sb, "  %-18s %-55s %s\n", name, def, val)
	}
	w("Parameter", "Definition", "Default")
	w("---------", "----------", "-------")
	w("B", "bytes in a disk page available for user data", fmt.Sprintf("%.0f bytes", p.B))
	w("h", "storage overhead per object (object header)", fmt.Sprintf("%.0f bytes", p.H))
	w("m", "B+tree fanout", fmt.Sprintf("%.0f", p.M))
	w("|S|", "number of objects in S", fmt.Sprintf("%.0f", p.SCount))
	w("f", "sharing level of objects in S", fmt.Sprintf("%.0f (varied)", p.F))
	w("f_r", "selectivity of the clause in read queries", fmt.Sprintf("%.3f (varied)", p.Fr))
	w("f_s", "selectivity of the clause in update queries", fmt.Sprintf("%.3f", p.Fs))
	w("sizeof(OID)", "size of OIDs", fmt.Sprintf("%.0f bytes", p.OIDSize))
	w("sizeof(link-ID)", "size of link IDs", fmt.Sprintf("%.0f byte", p.LinkIDSize))
	w("sizeof(type-tag)", "size of type-tags", fmt.Sprintf("%.0f bytes", p.TypeTagSize))
	w("k", "size of the replicated field, repfield", fmt.Sprintf("%.0f bytes", p.K))
	w("r", "size of objects in R (varies with strategy)", fmt.Sprintf("%.0f bytes", p.RSize))
	w("s", "size of objects in S (varies with strategy)", fmt.Sprintf("%.0f bytes", p.SSize))
	w("t", "size of objects in T", fmt.Sprintf("%.0f bytes", p.TSize))
	sb.WriteString("\n  Derived (no replication, f=1):\n")
	w("s'", "k + sizeof(type-tag)", fmt.Sprintf("%.0f bytes", p.K+p.TypeTagSize))
	w("l", "linkID + type-tag + f*OID", "11 bytes (f=1)")
	return sb.String()
}

// costTable renders a Figure 12/14-style table for the given setting.
func costTable(title string, setting costmodel.Setting) string {
	var sb strings.Builder
	sb.WriteString(title + "\n\n")
	fmt.Fprintf(&sb, "  %-24s | %8s %8s | %8s %8s\n", "", "f=1", "", "f=20", "")
	fmt.Fprintf(&sb, "  %-24s | %8s %8s | %8s %8s\n", "Strategy", "C_read", "C_update", "C_read", "C_update")
	fmt.Fprintf(&sb, "  %s\n", strings.Repeat("-", 70))
	for _, st := range []costmodel.Strategy{costmodel.NoReplication, costmodel.InPlace, costmodel.Separate} {
		cells := make([]float64, 0, 4)
		for _, f := range []float64{1, 20} {
			p := costmodel.Default()
			p.F = f
			p.Fr = 0.002
			cells = append(cells, math.Ceil(p.ReadCost(st, setting)), math.Ceil(p.UpdateCost(st, setting)))
		}
		fmt.Fprintf(&sb, "  %-24s | %8.0f %8.0f | %8.0f %8.0f\n", st, cells[0], cells[1], cells[2], cells[3])
	}
	sb.WriteString("\n  (f_r = .002; fractional values rounded up, as in the paper)\n")
	return sb.String()
}

// Figure12Table renders the unclustered selected-cost table.
func Figure12Table() string {
	return costTable("Figure 12: Selected Values for C_read and C_update (Unclustered Access)", costmodel.Unclustered)
}

// Figure14Table renders the clustered selected-cost table.
func Figure14Table() string {
	return costTable("Figure 14: Selected Values for C_read and C_update (Clustered Access)", costmodel.Clustered)
}

// Series is one plotted line: a strategy at one read selectivity.
type Series struct {
	Label    string
	Strategy costmodel.Strategy
	Fr       float64
	Values   []float64 // percentage difference per PUpdate point
}

// Sweep is one graph of Figure 11 or 13: the percentage difference in
// C_total versus update probability, at one sharing level.
type Sweep struct {
	Setting  costmodel.Setting
	F        float64
	RCount   float64
	PUpdates []float64
	Series   []Series
}

// NewSweep computes one graph's series.
func NewSweep(setting costmodel.Setting, f float64, steps int) Sweep {
	if steps < 2 {
		steps = 2
	}
	sw := Sweep{Setting: setting, F: f}
	for i := 0; i <= steps; i++ {
		sw.PUpdates = append(sw.PUpdates, float64(i)/float64(steps))
	}
	base := costmodel.Default()
	base.F = f
	sw.RCount = base.RCount()
	for _, st := range []costmodel.Strategy{costmodel.InPlace, costmodel.Separate} {
		for _, fr := range paperFr {
			p := costmodel.Default()
			p.F = f
			p.Fr = fr
			s := Series{
				Label:    fmt.Sprintf("%s fr=%.3f", shortName(st), fr),
				Strategy: st,
				Fr:       fr,
			}
			for _, pu := range sw.PUpdates {
				s.Values = append(s.Values, p.PercentDiff(st, setting, pu))
			}
			sw.Series = append(sw.Series, s)
		}
	}
	return sw
}

func shortName(st costmodel.Strategy) string {
	switch st {
	case costmodel.InPlace:
		return "in-place"
	case costmodel.Separate:
		return "separate"
	default:
		return "none"
	}
}

// Figure11 computes the four unclustered graphs.
func Figure11(steps int) []Sweep {
	out := make([]Sweep, 0, len(paperF))
	for _, f := range paperF {
		out = append(out, NewSweep(costmodel.Unclustered, f, steps))
	}
	return out
}

// Figure13 computes the four clustered graphs.
func Figure13(steps int) []Sweep {
	out := make([]Sweep, 0, len(paperF))
	for _, f := range paperF {
		out = append(out, NewSweep(costmodel.Clustered, f, steps))
	}
	return out
}

// Title renders the graph heading in the paper's style.
func (sw Sweep) Title() string {
	setting := "Unclustered"
	if sw.Setting == costmodel.Clustered {
		setting = "Clustered"
	}
	return fmt.Sprintf("%s Access, f = %.0f, |R| = %.0f", setting, sw.F, sw.RCount)
}

// CSV renders the sweep as comma-separated series, one row per update
// probability.
func (sw Sweep) CSV() string {
	var sb strings.Builder
	sb.WriteString("p_update")
	for _, s := range sw.Series {
		sb.WriteString("," + strings.ReplaceAll(s.Label, " ", "_"))
	}
	sb.WriteByte('\n')
	for i, pu := range sw.PUpdates {
		fmt.Fprintf(&sb, "%.3f", pu)
		for _, s := range sw.Series {
			fmt.Fprintf(&sb, ",%.2f", s.Values[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
