package catalog

import (
	"bytes"
	"reflect"
	"testing"
)

// fullCatalog builds a catalog exercising every persisted feature.
func fullCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := employeeCatalog(t)
	mustPath := func(s string, strat Strategy, opts ...PathOption) *Path {
		t.Helper()
		spec, err := ParsePathSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.AddPath(spec, strat, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mustPath("Emp1.dept.name", InPlace)
	mustPath("Emp1.dept.budget", Separate)
	mustPath("Emp1.dept.org.name", InPlace, WithDeferred())
	mustPath("Emp2.dept.org.name", InPlace, WithCollapsed())
	mustPath("Emp2.dept.all", Separate)
	if err := c.AddIndex(&Index{Name: "sal", Set: "Emp1", Field: "salary", KeyKind: 1, FileID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "orgname", Set: "Emp1", Field: "name", Path: []string{"dept", "org"}, Clustered: true, KeyKind: 3, FileID: 10}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSnapshotRestoreFidelity(t *testing.T) {
	c := fullCatalog(t)
	data, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	// Paths: full structural equality of the observable state.
	if len(got.Paths()) != len(c.Paths()) {
		t.Fatalf("paths: %d vs %d", len(got.Paths()), len(c.Paths()))
	}
	for i, p := range c.Paths() {
		q := got.Paths()[i]
		if p.Spec.String() != q.Spec.String() || p.ID != q.ID || p.Strategy != q.Strategy ||
			p.Collapsed != q.Collapsed || p.Deferred != q.Deferred {
			t.Fatalf("path %d: %+v vs %+v", i, p, q)
		}
		if !reflect.DeepEqual(p.LinkSequence(), q.LinkSequence()) {
			t.Fatalf("path %d link sequence: %v vs %v", i, p.LinkSequence(), q.LinkSequence())
		}
		if !reflect.DeepEqual(p.Fields, q.Fields) {
			t.Fatalf("path %d fields: %v vs %v", i, p.Fields, q.Fields)
		}
		if (p.Group == nil) != (q.Group == nil) {
			t.Fatalf("path %d group presence differs", i)
		}
		if p.Group != nil && (p.Group.ID != q.Group.ID || !reflect.DeepEqual(p.Group.Fields, q.Group.Fields)) {
			t.Fatalf("path %d group: %+v vs %+v", i, p.Group, q.Group)
		}
		if len(p.Types) != len(q.Types) {
			t.Fatalf("path %d types: %d vs %d", i, len(p.Types), len(q.Types))
		}
		for j := range p.Types {
			if p.Types[j].Name != q.Types[j].Name || p.Types[j].Tag != q.Types[j].Tag {
				t.Fatalf("path %d type %d differs", i, j)
			}
		}
	}
	// Indexes.
	for _, name := range []string{"sal", "orgname"} {
		a, ok1 := c.IndexByName(name)
		b, ok2 := got.IndexByName(name)
		if !ok1 || !ok2 || !reflect.DeepEqual(a, b) {
			t.Fatalf("index %s: %+v vs %+v", name, a, b)
		}
	}
	// Links registry, including the prefix-sharing map.
	for source, prefix := range map[string][]string{"Emp1": {"dept"}} {
		a, ok1 := c.LinkFor(source, prefix)
		b, ok2 := got.LinkFor(source, prefix)
		if !ok1 || !ok2 || a.ID != b.ID || a.Level != b.Level {
			t.Fatalf("LinkFor(%s, %v): %+v vs %+v", source, prefix, a, b)
		}
	}
	// The snapshot is stable: snapshotting the restored catalog reproduces
	// the same bytes.
	data2, err := got.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("snapshot not stable across restore")
	}
	// Counters continue, so new DDL never collides with restored IDs.
	spec, _ := ParsePathSpec("Org.name")
	_ = spec
	newSpec, _ := ParsePathSpec("Emp2.dept.name")
	p, err := got.AddPath(newSpec, InPlace)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range c.Paths() {
		if old.ID == p.ID {
			t.Fatalf("restored catalog reused path ID %d", p.ID)
		}
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	c := fullCatalog(t)
	data, _ := c.Snapshot()
	cases := [][]byte{
		nil,
		[]byte("not json"),
		[]byte(`{"version": 2}`),
		bytes.Replace(data, []byte(`"type": "EMP"`), []byte(`"type": "GONE"`), 1),
	}
	for i, bad := range cases {
		if _, err := Restore(bad); err == nil {
			t.Errorf("case %d: corrupt snapshot accepted", i)
		}
	}
}

func TestRemovePathAndSharedLinks(t *testing.T) {
	c := employeeCatalog(t)
	spec1, _ := ParsePathSpec("Emp1.dept.name")
	spec2, _ := ParsePathSpec("Emp1.dept.budget")
	p1, err := c.AddPath(spec1, InPlace)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.AddPath(spec2, InPlace)
	if err != nil {
		t.Fatal(err)
	}
	sharedID := p1.Links[0].ID
	if err := c.RemovePath(p1); err != nil {
		t.Fatal(err)
	}
	// The shared link survives for p2.
	if _, ok := c.LinkByID(sharedID); !ok {
		t.Fatal("shared link dropped while in use")
	}
	if err := c.RemovePath(p2); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LinkByID(sharedID); ok {
		t.Fatal("orphaned link not dropped")
	}
	if _, ok := c.LinkFor("Emp1", []string{"dept"}); ok {
		t.Fatal("orphaned link still in sharing map")
	}
	// A fresh path gets a fresh link ID and everything still works.
	p3, err := c.AddPath(spec1, InPlace)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Links[0].ID == sharedID {
		t.Log("link ID reuse is fine; registry must be consistent")
	}
	if err := c.RemovePath(p1); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestRemovePathGroupLifecycle(t *testing.T) {
	c := employeeCatalog(t)
	spec1, _ := ParsePathSpec("Emp1.dept.name")
	spec2, _ := ParsePathSpec("Emp1.dept.budget")
	p1, _ := c.AddPath(spec1, Separate)
	p2, _ := c.AddPath(spec2, Separate)
	gid := p1.Group.ID
	if err := c.RemovePath(p1); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GroupByID(gid); !ok {
		t.Fatal("group dropped while p2 remains")
	}
	if err := c.RemovePath(p2); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GroupByID(gid); ok {
		t.Fatal("orphaned group not dropped")
	}
}

func TestRemoveIndex(t *testing.T) {
	c := employeeCatalog(t)
	if err := c.AddIndex(&Index{Name: "x", Set: "Emp1", Field: "salary"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveIndex("x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.IndexByName("x"); ok {
		t.Fatal("index survives removal")
	}
	if err := c.RemoveIndex("x"); err == nil {
		t.Fatal("double remove succeeded")
	}
}
