package catalog

import (
	"encoding/json"
	"fmt"

	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// Snapshot serializes the whole catalog — types, sets, indexes, replication
// paths, links, and groups — so a file-backed database can be reopened. The
// format is JSON for debuggability; a catalog is metadata-sized.

type fieldSnap struct {
	Name    string      `json:"name"`
	Kind    schema.Kind `json:"kind"`
	RefType string      `json:"ref_type,omitempty"`
}

type typeSnap struct {
	Name   string      `json:"name"`
	Tag    uint16      `json:"tag"`
	Fields []fieldSnap `json:"fields"`
}

type setSnap struct {
	Name     string          `json:"name"`
	TypeName string          `json:"type"`
	FileID   pagefile.FileID `json:"file_id"`
}

type indexSnap struct {
	Name      string          `json:"name"`
	Set       string          `json:"set"`
	Field     string          `json:"field"`
	Path      []string        `json:"path,omitempty"`
	Clustered bool            `json:"clustered,omitempty"`
	KeyKind   schema.Kind     `json:"key_kind"`
	FileID    pagefile.FileID `json:"file_id"`
}

type linkSnap struct {
	ID       uint8           `json:"id"`
	Source   string          `json:"source"`
	Prefix   []string        `json:"prefix"`
	FromType string          `json:"from_type"`
	ToType   string          `json:"to_type"`
	Level    int             `json:"level"`
	FileID   pagefile.FileID `json:"file_id,omitempty"`
	HasFile  bool            `json:"has_file,omitempty"`
	Shared   bool            `json:"shared"` // registered in the prefix-sharing map
}

type replFieldSnap struct {
	Idx      uint8       `json:"idx"`
	Terminal int         `json:"terminal"`
	Name     string      `json:"name"`
	Kind     schema.Kind `json:"kind"`
}

type groupSnap struct {
	ID      uint8           `json:"id"`
	Source  string          `json:"source"`
	Refs    []string        `json:"refs"`
	Fields  []replFieldSnap `json:"fields"`
	FileID  pagefile.FileID `json:"file_id,omitempty"`
	HasFile bool            `json:"has_file,omitempty"`
	Built   int             `json:"built"`
}

type pathSnap struct {
	ID            uint8           `json:"id"`
	Source        string          `json:"source"`
	Refs          []string        `json:"refs"`
	Field         string          `json:"field"`
	Strategy      Strategy        `json:"strategy"`
	LinkIDs       []uint8         `json:"link_ids"`
	CollapsedLink uint8           `json:"collapsed_link,omitempty"`
	Fields        []replFieldSnap `json:"fields"`
	GroupID       uint8           `json:"group_id,omitempty"`
	Collapsed     bool            `json:"collapsed,omitempty"`
	Deferred      bool            `json:"deferred,omitempty"`
}

type catalogSnap struct {
	Version int         `json:"version"`
	Types   []typeSnap  `json:"types"`
	Sets    []setSnap   `json:"sets"`
	Indexes []indexSnap `json:"indexes"`
	Links   []linkSnap  `json:"links"`
	Groups  []groupSnap `json:"groups"`
	Paths   []pathSnap  `json:"paths"`
	// Tainted records sets whose derived replication state may be stale
	// after a mid-operation failure; persisted so a crash-and-reopen still
	// knows repair is needed.
	Tainted    map[string]string `json:"tainted,omitempty"`
	NextTag    uint16            `json:"next_tag"`
	NextPathID uint8             `json:"next_path_id"`
	NextLinkID uint8             `json:"next_link_id"`
}

const snapshotVersion = 1

// Snapshot serializes the catalog.
func (c *Catalog) Snapshot() ([]byte, error) {
	snap := catalogSnap{
		Version:    snapshotVersion,
		NextTag:    c.nextTag,
		NextPathID: c.nextPathID,
		NextLinkID: c.nextLinkID,
	}
	// Types in tag order for determinism.
	for tag := uint16(1); tag < c.nextTag; tag++ {
		t, ok := c.typesByTag[tag]
		if !ok {
			continue
		}
		ts := typeSnap{Name: t.Name, Tag: t.Tag}
		for _, f := range t.Fields {
			ts.Fields = append(ts.Fields, fieldSnap{Name: f.Name, Kind: f.Kind, RefType: f.RefType})
		}
		snap.Types = append(snap.Types, ts)
	}
	for _, s := range c.sets {
		snap.Sets = append(snap.Sets, setSnap{Name: s.Name, TypeName: s.TypeName, FileID: s.FileID})
	}
	sortBy(snap.Sets, func(a, b setSnap) bool { return a.Name < b.Name })
	for _, ix := range c.indexes {
		snap.Indexes = append(snap.Indexes, indexSnap{
			Name: ix.Name, Set: ix.Set, Field: ix.Field, Path: ix.Path,
			Clustered: ix.Clustered, KeyKind: ix.KeyKind, FileID: ix.FileID,
		})
	}
	sortBy(snap.Indexes, func(a, b indexSnap) bool { return a.Name < b.Name })
	seen := map[uint8]bool{}
	addLink := func(l *Link, shared bool) {
		if seen[l.ID] {
			return
		}
		seen[l.ID] = true
		snap.Links = append(snap.Links, linkSnap{
			ID: l.ID, Source: l.Source, Prefix: l.Prefix, FromType: l.FromType,
			ToType: l.ToType, Level: l.Level, FileID: l.FileID, HasFile: l.HasFile,
			Shared: shared,
		})
	}
	for _, l := range c.linksByKey {
		addLink(l, true)
	}
	for _, l := range c.linksByID {
		addLink(l, false) // collapsed links are not in the sharing map
	}
	sortBy(snap.Links, func(a, b linkSnap) bool { return a.ID < b.ID })
	for _, g := range c.groups {
		gs := groupSnap{ID: g.ID, Source: g.Source, Refs: g.Refs, FileID: g.FileID, HasFile: g.HasFile, Built: g.Built}
		for _, f := range g.Fields {
			gs.Fields = append(gs.Fields, replFieldSnap(f))
		}
		snap.Groups = append(snap.Groups, gs)
	}
	sortBy(snap.Groups, func(a, b groupSnap) bool { return a.ID < b.ID })
	for _, p := range c.paths {
		ps := pathSnap{
			ID: p.ID, Source: p.Spec.Source, Refs: p.Spec.Refs, Field: p.Spec.Field,
			Strategy: p.Strategy, Collapsed: p.Collapsed, Deferred: p.Deferred,
		}
		for _, l := range p.Links {
			ps.LinkIDs = append(ps.LinkIDs, l.ID)
		}
		if p.CollapsedLink != nil {
			ps.CollapsedLink = p.CollapsedLink.ID
		}
		for _, f := range p.Fields {
			ps.Fields = append(ps.Fields, replFieldSnap(f))
		}
		if p.Group != nil {
			ps.GroupID = p.Group.ID
		}
		snap.Paths = append(snap.Paths, ps)
	}
	if len(c.tainted) > 0 {
		snap.Tainted = c.TaintedSets()
	}
	return json.MarshalIndent(snap, "", "  ")
}

func sortBy[T any](s []T, less func(a, b T) bool) {
	// Insertion sort: catalog collections are metadata-sized.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Restore rebuilds a catalog from a Snapshot.
func Restore(data []byte) (*Catalog, error) {
	var snap catalogSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("catalog: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("catalog: unsupported snapshot version %d", snap.Version)
	}
	c := New()
	c.nextTag = snap.NextTag
	c.nextPathID = snap.NextPathID
	c.nextLinkID = snap.NextLinkID
	for _, ts := range snap.Types {
		fields := make([]schema.Field, len(ts.Fields))
		for i, f := range ts.Fields {
			fields[i] = schema.Field{Name: f.Name, Kind: f.Kind, RefType: f.RefType}
		}
		t, err := schema.NewType(ts.Name, ts.Tag, fields)
		if err != nil {
			return nil, err
		}
		c.types[t.Name] = t
		c.typesByTag[t.Tag] = t
	}
	for _, ss := range snap.Sets {
		if _, ok := c.types[ss.TypeName]; !ok {
			return nil, fmt.Errorf("catalog: set %s references unknown type %s", ss.Name, ss.TypeName)
		}
		c.sets[ss.Name] = &Set{Name: ss.Name, TypeName: ss.TypeName, FileID: ss.FileID}
	}
	for _, is := range snap.Indexes {
		ix := &Index{
			Name: is.Name, Set: is.Set, Field: is.Field, Path: is.Path,
			Clustered: is.Clustered, KeyKind: is.KeyKind, FileID: is.FileID,
		}
		c.indexes[ix.Name] = ix
	}
	for _, ls := range snap.Links {
		l := &Link{
			ID: ls.ID, Source: ls.Source, Prefix: ls.Prefix,
			RefField: ls.Prefix[len(ls.Prefix)-1],
			FromType: ls.FromType, ToType: ls.ToType, Level: ls.Level,
			FileID: ls.FileID, HasFile: ls.HasFile,
		}
		c.linksByID[l.ID] = l
		if ls.Shared {
			c.linksByKey[linkKey(l.Source, l.Prefix)] = l
		}
	}
	for _, gs := range snap.Groups {
		g := &Group{ID: gs.ID, Source: gs.Source, Refs: gs.Refs, FileID: gs.FileID, HasFile: gs.HasFile, Built: gs.Built}
		for _, f := range gs.Fields {
			g.Fields = append(g.Fields, ReplField(f))
		}
		c.groups[linkKey(g.Source, g.Refs)] = g
	}
	for _, ps := range snap.Paths {
		p := &Path{
			ID:       ps.ID,
			Spec:     PathSpec{Source: ps.Source, Refs: ps.Refs, Field: ps.Field},
			Strategy: ps.Strategy, Collapsed: ps.Collapsed, Deferred: ps.Deferred,
		}
		srcType, err := c.SetType(ps.Source)
		if err != nil {
			return nil, err
		}
		p.Types = []*schema.Type{srcType}
		cur := srcType
		for _, ref := range ps.Refs {
			f, ok := cur.Field(ref)
			if !ok || f.Kind != schema.KindRef {
				return nil, fmt.Errorf("catalog: path %s: broken ref chain at %q", p.Spec, ref)
			}
			next, ok := c.types[f.RefType]
			if !ok {
				return nil, fmt.Errorf("catalog: path %s: unknown type %s", p.Spec, f.RefType)
			}
			p.Types = append(p.Types, next)
			cur = next
		}
		for _, id := range ps.LinkIDs {
			l, ok := c.linksByID[id]
			if !ok {
				return nil, fmt.Errorf("catalog: path %s references unknown link %d", p.Spec, id)
			}
			p.Links = append(p.Links, l)
		}
		if ps.CollapsedLink != 0 {
			l, ok := c.linksByID[ps.CollapsedLink]
			if !ok {
				return nil, fmt.Errorf("catalog: path %s references unknown collapsed link %d", p.Spec, ps.CollapsedLink)
			}
			p.CollapsedLink = l
		}
		for _, f := range ps.Fields {
			p.Fields = append(p.Fields, ReplField(f))
		}
		if ps.GroupID != 0 {
			g, ok := c.GroupByID(ps.GroupID)
			if !ok {
				return nil, fmt.Errorf("catalog: path %s references unknown group %d", p.Spec, ps.GroupID)
			}
			p.Group = g
		}
		c.paths = append(c.paths, p)
	}
	for set, why := range snap.Tainted {
		c.tainted[set] = why
	}
	return c, nil
}
