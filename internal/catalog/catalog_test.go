package catalog

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// employeeCatalog builds the paper's Figure 1 schema: ORG, DEPT, EMP types
// and the Org, Dept, Emp1, Emp2 sets.
func employeeCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if _, err := c.DefineType("ORG", []schema.Field{
		{Name: "name", Kind: schema.KindString},
		{Name: "budget", Kind: schema.KindInt},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineType("DEPT", []schema.Field{
		{Name: "name", Kind: schema.KindString},
		{Name: "budget", Kind: schema.KindInt},
		{Name: "org", Kind: schema.KindRef, RefType: "ORG"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineType("EMP", []schema.Field{
		{Name: "name", Kind: schema.KindString},
		{Name: "age", Kind: schema.KindInt},
		{Name: "salary", Kind: schema.KindInt},
		{Name: "dept", Kind: schema.KindRef, RefType: "DEPT"},
	}); err != nil {
		t.Fatal(err)
	}
	for i, s := range []struct{ name, typ string }{
		{"Org", "ORG"}, {"Dept", "DEPT"}, {"Emp1", "EMP"}, {"Emp2", "EMP"},
	} {
		if _, err := c.CreateSet(s.name, s.typ, pagefile.FileID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestDefineTypeAndSets(t *testing.T) {
	c := employeeCatalog(t)
	emp, ok := c.TypeByName("EMP")
	if !ok {
		t.Fatal("EMP not found")
	}
	if got, ok := c.TypeByTag(emp.Tag); !ok || got != emp {
		t.Fatal("TypeByTag mismatch")
	}
	if _, err := c.DefineType("EMP", nil); err == nil {
		t.Fatal("duplicate type accepted")
	}
	if _, err := c.DefineType("X", []schema.Field{{Name: "r", Kind: schema.KindRef, RefType: "NOPE"}}); err == nil {
		t.Fatal("ref to undefined type accepted")
	}
	// Self-referential types are allowed.
	if _, err := c.DefineType("NODE", []schema.Field{
		{Name: "v", Kind: schema.KindInt},
		{Name: "next", Kind: schema.KindRef, RefType: "NODE"},
	}); err != nil {
		t.Fatalf("self-ref type rejected: %v", err)
	}

	if _, err := c.CreateSet("Emp1", "EMP", 9); err == nil {
		t.Fatal("duplicate set accepted")
	}
	if _, err := c.CreateSet("Bad", "NOPE", 9); err == nil {
		t.Fatal("set of undefined type accepted")
	}
	typ, err := c.SetType("Emp1")
	if err != nil || typ.Name != "EMP" {
		t.Fatalf("SetType = %v, %v", typ, err)
	}
	if len(c.Sets()) != 4 {
		t.Fatalf("Sets() returned %d", len(c.Sets()))
	}
}

func TestParsePathSpec(t *testing.T) {
	spec, err := ParsePathSpec("Emp1.dept.org.name")
	if err != nil {
		t.Fatal(err)
	}
	want := PathSpec{Source: "Emp1", Refs: []string{"dept", "org"}, Field: "name"}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.String() != "Emp1.dept.org.name" {
		t.Fatalf("String = %q", spec.String())
	}
	for _, bad := range []string{"", "Emp1", "Emp1.name", "Emp1..name"} {
		if _, err := ParsePathSpec(bad); err == nil {
			t.Errorf("ParsePathSpec(%q) accepted", bad)
		}
	}
}

func TestAddPathValidation(t *testing.T) {
	c := employeeCatalog(t)
	cases := []struct {
		spec   string
		substr string
	}{
		{"Nope.dept.name", "no set"},
		{"Emp1.missing.name", "no field"},
		{"Emp1.age.name", "not a reference"},
		{"Emp1.dept.missing", "no field"},
	}
	for _, tc := range cases {
		spec, err := ParsePathSpec(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddPath(spec, InPlace); err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("AddPath(%s): err = %v, want containing %q", tc.spec, err, tc.substr)
		}
	}
	spec, _ := ParsePathSpec("Emp1.dept.name")
	if _, err := c.AddPath(spec, Strategy(9)); err == nil {
		t.Error("invalid strategy accepted")
	}
	// Replicating a reference attribute (§3.3.3 path collapsing) is allowed
	// in-place but not separately.
	refSpec, _ := ParsePathSpec("Emp1.dept.org")
	if _, err := c.AddPath(refSpec, Separate); err == nil || !strings.Contains(err.Error(), "in-place") {
		t.Errorf("separate ref replication: %v", err)
	}
	if p, err := c.AddPath(refSpec, InPlace); err != nil {
		t.Errorf("in-place ref replication rejected: %v", err)
	} else if len(p.Fields) != 1 || p.Fields[0].Kind != schema.KindRef {
		t.Errorf("ref replication fields = %v", p.Fields)
	}
	if _, err := c.AddPath(spec, InPlace); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPath(spec, InPlace); !errors.Is(err, ErrPathExists) {
		t.Errorf("duplicate path: %v", err)
	}
}

// TestLinkSharing reproduces the paper's §4.1.4 example: three paths from
// Emp1 share link 1; a fourth path from Emp2 gets its own link.
func TestLinkSharing(t *testing.T) {
	c := employeeCatalog(t)
	mustPath := func(s string, strat Strategy) *Path {
		spec, err := ParsePathSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.AddPath(spec, strat)
		if err != nil {
			t.Fatalf("AddPath(%s): %v", s, err)
		}
		return p
	}
	p1 := mustPath("Emp1.dept.budget", InPlace)
	p2 := mustPath("Emp1.dept.name", InPlace)
	p3 := mustPath("Emp1.dept.org.name", InPlace)
	p4 := mustPath("Emp2.dept.org.name", InPlace)

	if !reflect.DeepEqual(p1.LinkSequence(), []uint8{1}) {
		t.Fatalf("p1 link sequence = %v, want [1]", p1.LinkSequence())
	}
	if !reflect.DeepEqual(p2.LinkSequence(), []uint8{1}) {
		t.Fatalf("p2 link sequence = %v, want [1]", p2.LinkSequence())
	}
	if !reflect.DeepEqual(p3.LinkSequence(), []uint8{1, 2}) {
		t.Fatalf("p3 link sequence = %v, want [1,2]", p3.LinkSequence())
	}
	if got := p4.LinkSequence(); len(got) != 2 || got[0] == 1 || got[1] == 2 {
		t.Fatalf("p4 link sequence = %v, want two fresh links", got)
	}
	if p1.Links[0] != p2.Links[0] || p1.Links[0] != p3.Links[0] {
		t.Fatal("prefix-sharing paths do not share the link object")
	}
	l, ok := c.LinkByID(1)
	if !ok || l.RefField != "dept" || l.Level != 0 || l.FromType != "EMP" || l.ToType != "DEPT" {
		t.Fatalf("link 1 = %+v", l)
	}
	got := c.PathsWithLink(1)
	if len(got) != 3 {
		t.Fatalf("PathsWithLink(1) returned %d paths", len(got))
	}
	l2, _ := c.LinkByID(2)
	if l2.Level != 1 || l2.FromType != "DEPT" || l2.ToType != "ORG" {
		t.Fatalf("link 2 = %+v", l2)
	}
}

func TestSeparateGroupsShareAndExtend(t *testing.T) {
	c := employeeCatalog(t)
	add := func(s string) *Path {
		spec, _ := ParsePathSpec(s)
		p, err := c.AddPath(spec, Separate)
		if err != nil {
			t.Fatalf("AddPath(%s): %v", s, err)
		}
		return p
	}
	p1 := add("Emp1.dept.name")
	p2 := add("Emp1.dept.budget")
	p3 := add("Emp2.dept.name")

	if p1.Group == nil || p2.Group == nil {
		t.Fatal("separate paths lack groups")
	}
	if p1.Group != p2.Group {
		t.Fatal("Emp1.dept.name and Emp1.dept.budget should share one S′ group")
	}
	if p3.Group == p1.Group {
		t.Fatal("Emp2 path must not share Emp1's S′ group (paper §5: no sharing between sets)")
	}
	g := p1.Group
	if len(g.Fields) != 2 {
		t.Fatalf("group fields = %v, want name and budget", g.Fields)
	}
	if g.Fields[0].Name != "name" || g.Fields[1].Name != "budget" {
		t.Fatalf("group fields = %v", g.Fields)
	}
	if g.Fields[0].Idx == g.Fields[1].Idx {
		t.Fatal("group fields share an index")
	}
	// A repeated field keeps its index.
	spec, _ := ParsePathSpec("Emp1.dept.name")
	if _, err := c.AddPath(spec, Separate); !errors.Is(err, ErrPathExists) {
		t.Fatalf("dup separate path: %v", err)
	}
	// 1-level separate paths have no links (0-level inverted path).
	if len(p1.Links) != 0 {
		t.Fatalf("1-level separate path has %d links, want 0", len(p1.Links))
	}
	// 2-level separate path has exactly one link.
	p4 := add("Emp1.dept.org.name")
	if len(p4.Links) != 1 || p4.Links[0].RefField != "dept" {
		t.Fatalf("2-level separate path links = %+v", p4.Links)
	}
	if gg, ok := c.GroupByID(g.ID); !ok || gg != g {
		t.Fatal("GroupByID failed")
	}
	if got := c.PathsWithGroup(g.ID); len(got) != 2 {
		t.Fatalf("PathsWithGroup = %d paths", len(got))
	}
}

func TestFullObjectReplication(t *testing.T) {
	c := employeeCatalog(t)
	spec, _ := ParsePathSpec("Emp1.dept.all")
	p, err := c.AddPath(spec, InPlace)
	if err != nil {
		t.Fatal(err)
	}
	// DEPT scalar fields are name and budget; org (ref) is excluded.
	if len(p.Fields) != 2 {
		t.Fatalf("all-replication fields = %v", p.Fields)
	}
	names := []string{p.Fields[0].Name, p.Fields[1].Name}
	if !reflect.DeepEqual(names, []string{"name", "budget"}) {
		t.Fatalf("field names = %v", names)
	}
	if p.TerminalType().Name != "DEPT" {
		t.Fatalf("terminal type = %s", p.TerminalType().Name)
	}
	if _, ok := p.FieldByTerminal(1); !ok {
		t.Fatal("FieldByTerminal(budget) missed")
	}
	if _, ok := p.FieldByTerminal(2); ok {
		t.Fatal("FieldByTerminal(org) should miss (ref field)")
	}
}

func TestCollapsedPathValidation(t *testing.T) {
	c := employeeCatalog(t)
	spec2, _ := ParsePathSpec("Emp1.dept.org.name")
	p, err := c.AddPath(spec2, InPlace, WithCollapsed())
	if err != nil {
		t.Fatal(err)
	}
	if p.CollapsedLink == nil || len(p.Links) != 0 {
		t.Fatal("collapsed path should have a single collapsed link")
	}
	if got := p.LinkSequence(); len(got) != 1 {
		t.Fatalf("collapsed link sequence = %v", got)
	}
	spec1, _ := ParsePathSpec("Emp2.dept.name")
	if _, err := c.AddPath(spec1, InPlace, WithCollapsed()); err == nil {
		t.Fatal("collapsed 1-level path accepted")
	}
	if _, err := c.AddPath(spec2, Separate, WithCollapsed()); err == nil {
		t.Fatal("collapsed separate path accepted")
	}
}

func TestPathQueries(t *testing.T) {
	c := employeeCatalog(t)
	s1, _ := ParsePathSpec("Emp1.dept.name")
	s2, _ := ParsePathSpec("Emp2.dept.name")
	c.AddPath(s1, InPlace)
	c.AddPath(s2, Separate)
	if got := c.PathsFromSet("Emp1"); len(got) != 1 {
		t.Fatalf("PathsFromSet(Emp1) = %d", len(got))
	}
	if got := c.PathsFromSet("Dept"); len(got) != 0 {
		t.Fatalf("PathsFromSet(Dept) = %d", len(got))
	}
	if len(c.Paths()) != 2 {
		t.Fatal("Paths() wrong")
	}
	if p, ok := c.FindPath(s1, InPlace); !ok || p.Spec.Source != "Emp1" {
		t.Fatal("FindPath by strategy failed")
	}
	if _, ok := c.FindPath(s1, Separate); ok {
		t.Fatal("FindPath matched wrong strategy")
	}
	if p, ok := c.FindPath(s2, 0); !ok || p.Strategy != Separate {
		t.Fatal("FindPath any-strategy failed")
	}
	if p, _ := c.FindPath(s1, InPlace); p.NLevels() != 1 {
		t.Fatal("NLevels wrong")
	}
}

func TestIndexRegistry(t *testing.T) {
	c := employeeCatalog(t)
	ix := &Index{Name: "emp1_salary", Set: "Emp1", Field: "salary", KeyKind: schema.KindInt}
	if err := c.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(ix); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if err := c.AddIndex(&Index{Name: "x", Set: "Nope", Field: "f"}); err == nil {
		t.Fatal("index on missing set accepted")
	}
	pix := &Index{Name: "emp1_orgname", Set: "Emp1", Field: "name", Path: []string{"dept", "org"}, KeyKind: schema.KindString}
	if err := c.AddIndex(pix); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.IndexByName("emp1_salary"); !ok || got != ix {
		t.Fatal("IndexByName failed")
	}
	if got, ok := c.IndexFor("Emp1", "salary"); !ok || got != ix {
		t.Fatal("IndexFor failed")
	}
	if _, ok := c.IndexFor("Emp1", "name"); ok {
		t.Fatal("IndexFor matched a path index as base index")
	}
	if got, ok := c.PathIndexFor("Emp1", []string{"dept", "org"}, "name"); !ok || got != pix {
		t.Fatal("PathIndexFor failed")
	}
	if _, ok := c.PathIndexFor("Emp1", []string{"dept"}, "name"); ok {
		t.Fatal("PathIndexFor matched wrong chain")
	}
	if got := c.IndexesOn("Emp1"); len(got) != 2 {
		t.Fatalf("IndexesOn = %d", len(got))
	}
	if !pix.IsPathIndex() || ix.IsPathIndex() {
		t.Fatal("IsPathIndex wrong")
	}
}

func TestStrategyString(t *testing.T) {
	if InPlace.String() != "in-place" || Separate.String() != "separate" {
		t.Fatal("Strategy.String wrong")
	}
	if !strings.Contains(Strategy(9).String(), "9") {
		t.Fatal("unknown strategy string")
	}
}
