// Package catalog holds the system catalog: type definitions, named sets,
// index definitions, and — central to the paper — replication path metadata.
//
// Replication paths are registered here with their link sequences (§4.1.3).
// Link IDs are allocated so that paths sharing a common prefix share links
// (§4.1.4): the prefix "Emp1.dept" of Emp1.dept.name, Emp1.dept.budget and
// Emp1.dept.org.name maps to a single link with a single link file. Separate
// replication paths sharing a source set and ref chain share one S′ group,
// so the replicated values for D.name and D.budget live in one object (§5).
package catalog

import (
	"errors"
	"fmt"
	"strings"

	"github.com/exodb/fieldrepl/internal/pagefile"
	"github.com/exodb/fieldrepl/internal/schema"
)

// Strategy selects a replication storage strategy.
type Strategy uint8

// The two strategies of the paper.
const (
	InPlace Strategy = iota + 1
	Separate
)

func (s Strategy) String() string {
	switch s {
	case InPlace:
		return "in-place"
	case Separate:
		return "separate"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// AllFields is the terminal-field name requesting full object replication
// ("replicate Emp1.dept.all", §3.3.1).
const AllFields = "all"

// PathSpec is a replication path as specified by the user:
// Source.Refs[0].Refs[1]...Field, e.g. {Emp1, [dept org], name}.
type PathSpec struct {
	Source string   // set name the path emanates from
	Refs   []string // chain of reference attributes
	Field  string   // terminal field name, or AllFields
}

// String renders the spec in the paper's dotted syntax.
func (s PathSpec) String() string {
	parts := append([]string{s.Source}, s.Refs...)
	parts = append(parts, s.Field)
	return strings.Join(parts, ".")
}

// ParsePathSpec parses "Set.ref1.ref2.field" (at least one ref required).
func ParsePathSpec(s string) (PathSpec, error) {
	parts := strings.Split(s, ".")
	if len(parts) < 3 {
		return PathSpec{}, fmt.Errorf("catalog: replication path %q needs at least set.ref.field", s)
	}
	for _, p := range parts {
		if p == "" {
			return PathSpec{}, fmt.Errorf("catalog: replication path %q has an empty component", s)
		}
	}
	return PathSpec{Source: parts[0], Refs: parts[1 : len(parts)-1], Field: parts[len(parts)-1]}, nil
}

// Link is one link of an inverted path: the inverse of reference attribute
// RefField, mapping objects of ToType back to the objects of FromType that
// reference them. Links are shared by every path with the same (source set,
// ref prefix); Level is the link's position in those paths.
type Link struct {
	ID       uint8
	Source   string // source set of the paths sharing this link
	Prefix   []string
	RefField string // == Prefix[len(Prefix)-1]
	FromType string
	ToType   string
	Level    int // 0-based position in the path
	FileID   pagefile.FileID
	HasFile  bool
}

// ReplField identifies one replicated terminal field of a path. Idx is the
// stable index used as FieldIdx in hidden values and S′ objects; Terminal is
// the field index within the terminal type.
type ReplField struct {
	Idx      uint8
	Terminal int
	Name     string
	Kind     schema.Kind
}

// Group is a separate-replication S′ set shared by all separate paths with
// the same source set and ref chain. Its ID shares the hidden-value ID space
// with path IDs, so a source object's hidden (ID, HiddenSPrimeIdx) entry
// unambiguously names the group.
type Group struct {
	ID      uint8
	Source  string
	Refs    []string
	Fields  []ReplField
	FileID  pagefile.FileID
	HasFile bool
	// Built counts the fields materialized in the S′ file; when a new path
	// extends the group (len(Fields) > Built) the S′ file is rebuilt.
	Built int
}

// HiddenSPrimeIdx is the reserved FieldIdx under which a source object's
// hidden reference to its S′ object is stored.
const HiddenSPrimeIdx = 0xFF

// Path is a registered replication path.
type Path struct {
	ID       uint8
	Spec     PathSpec
	Strategy Strategy
	// Types[0] is the source set's type; Types[i+1] is the type reached by
	// Refs[i]. The terminal type is Types[len(Refs)].
	Types []*schema.Type
	// Links[i] inverts Refs[i]. For in-place paths len(Links) == len(Refs);
	// for separate paths the last ref needs no link (§5.2), so
	// len(Links) == len(Refs)-1.
	Links []*Link
	// Fields are the replicated terminal fields ("all" expands to every
	// scalar field of the terminal type).
	Fields []ReplField
	// Group is non-nil for separate paths.
	Group *Group
	// Collapsed marks a collapsed inverted path (§4.3.3): a single link maps
	// terminal objects directly to source objects with intermediate tags.
	// Only 2-level in-place paths support collapsing.
	Collapsed bool
	// CollapsedLink replaces Links for a collapsed path.
	CollapsedLink *Link
	// Deferred marks a path whose data-field update propagation is delayed
	// until the replicated values are next read (the paper's §8 future-work
	// item: "replication techniques in which updates are not propagated
	// until needed"). Repeated updates to the same terminal then cost one
	// propagation. Structural maintenance (reference-attribute changes,
	// inserts, deletes) stays eager. In-place paths only.
	Deferred bool
}

// NLevels returns the number of functional joins the path spans.
func (p *Path) NLevels() int { return len(p.Spec.Refs) }

// TerminalType returns the type at the end of the ref chain.
func (p *Path) TerminalType() *schema.Type { return p.Types[len(p.Types)-1] }

// FieldByTerminal returns the ReplField covering terminal field index ti.
func (p *Path) FieldByTerminal(ti int) (ReplField, bool) {
	for _, f := range p.Fields {
		if f.Terminal == ti {
			return f, true
		}
	}
	return ReplField{}, false
}

// Set is a named top-level set stored as one disk file.
type Set struct {
	Name     string
	TypeName string
	FileID   pagefile.FileID
}

// Index describes a B+tree index on a set. Path is empty for an index on a
// base field; for an index on a replicated path (§3.3.4) Path names the ref
// chain and Field the terminal field.
type Index struct {
	Name      string
	Set       string
	Field     string
	Path      []string
	Clustered bool
	KeyKind   schema.Kind
	FileID    pagefile.FileID
}

// IsPathIndex reports whether the index is built on a replicated path.
func (ix *Index) IsPathIndex() bool { return len(ix.Path) > 0 }

// Catalog is the in-memory system catalog.
type Catalog struct {
	types      map[string]*schema.Type
	typesByTag map[uint16]*schema.Type
	sets       map[string]*Set
	indexes    map[string]*Index
	paths      []*Path
	linksByKey map[string]*Link
	linksByID  map[uint8]*Link
	groups     map[string]*Group
	tainted    map[string]string // set name -> why its derived state is suspect
	nextTag    uint16
	nextPathID uint8 // shared by paths and groups (one hidden-ID space)
	nextLinkID uint8
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		types:      make(map[string]*schema.Type),
		typesByTag: make(map[uint16]*schema.Type),
		sets:       make(map[string]*Set),
		indexes:    make(map[string]*Index),
		linksByKey: make(map[string]*Link),
		linksByID:  make(map[uint8]*Link),
		groups:     make(map[string]*Group),
		tainted:    make(map[string]string),
		nextTag:    1,
		nextPathID: 1,
		nextLinkID: 1,
	}
}

// DefineType registers a type built from fields, assigning its tag.
func (c *Catalog) DefineType(name string, fields []schema.Field) (*schema.Type, error) {
	if _, dup := c.types[name]; dup {
		return nil, fmt.Errorf("catalog: type %s already defined", name)
	}
	for _, f := range fields {
		if f.Kind == schema.KindRef {
			if _, ok := c.types[f.RefType]; !ok && f.RefType != name {
				return nil, fmt.Errorf("catalog: type %s: ref field %q targets undefined type %s", name, f.Name, f.RefType)
			}
		}
	}
	t, err := schema.NewType(name, c.nextTag, fields)
	if err != nil {
		return nil, err
	}
	c.nextTag++
	c.types[name] = t
	c.typesByTag[t.Tag] = t
	return t, nil
}

// TypeByName returns a registered type.
func (c *Catalog) TypeByName(name string) (*schema.Type, bool) {
	t, ok := c.types[name]
	return t, ok
}

// TypeByTag returns a registered type by its tag.
func (c *Catalog) TypeByTag(tag uint16) (*schema.Type, bool) {
	t, ok := c.typesByTag[tag]
	return t, ok
}

// CreateSet registers a named set of the given type. The caller (engine)
// assigns the backing file.
func (c *Catalog) CreateSet(name, typeName string, fileID pagefile.FileID) (*Set, error) {
	if _, dup := c.sets[name]; dup {
		return nil, fmt.Errorf("catalog: set %s already exists", name)
	}
	if _, ok := c.types[typeName]; !ok {
		return nil, fmt.Errorf("catalog: set %s: undefined type %s", name, typeName)
	}
	s := &Set{Name: name, TypeName: typeName, FileID: fileID}
	c.sets[name] = s
	return s, nil
}

// SetByName returns a registered set.
func (c *Catalog) SetByName(name string) (*Set, bool) {
	s, ok := c.sets[name]
	return s, ok
}

// Sets returns all registered sets.
func (c *Catalog) Sets() []*Set {
	out := make([]*Set, 0, len(c.sets))
	for _, s := range c.sets {
		out = append(out, s)
	}
	return out
}

// SetType returns the type of a set.
func (c *Catalog) SetType(setName string) (*schema.Type, error) {
	s, ok := c.sets[setName]
	if !ok {
		return nil, fmt.Errorf("catalog: no set %s", setName)
	}
	t, ok := c.types[s.TypeName]
	if !ok {
		return nil, fmt.Errorf("catalog: set %s has undefined type %s", setName, s.TypeName)
	}
	return t, nil
}

// ErrPathExists is returned when the same path is replicated twice.
var ErrPathExists = errors.New("catalog: replication path already exists")

// PathOption modifies path registration.
type PathOption func(*Path)

// WithCollapsed requests a collapsed inverted path (§4.3.3). Valid only for
// 2-level in-place paths.
func WithCollapsed() PathOption { return func(p *Path) { p.Collapsed = true } }

// WithDeferred requests deferred update propagation (§8 future work):
// data-field updates to the path's terminal objects are queued and applied
// when the replicated values are next read (or on an explicit flush).
// Valid only for in-place paths.
func WithDeferred() PathOption { return func(p *Path) { p.Deferred = true } }

// AddPath validates and registers a replication path, allocating its link
// sequence with prefix sharing. For separate paths it finds or extends the
// S′ group; the returned group's Fields may have grown, in which case the
// engine rebuilds the group's S′ file.
func (c *Catalog) AddPath(spec PathSpec, strategy Strategy, opts ...PathOption) (*Path, error) {
	if strategy != InPlace && strategy != Separate {
		return nil, fmt.Errorf("catalog: invalid strategy %d", strategy)
	}
	if len(spec.Refs) == 0 {
		return nil, fmt.Errorf("catalog: path %s has no reference attributes", spec)
	}
	srcType, err := c.SetType(spec.Source)
	if err != nil {
		return nil, err
	}
	types := []*schema.Type{srcType}
	cur := srcType
	for i, ref := range spec.Refs {
		f, ok := cur.Field(ref)
		if !ok {
			return nil, fmt.Errorf("catalog: path %s: type %s has no field %q", spec, cur.Name, ref)
		}
		if f.Kind != schema.KindRef {
			return nil, fmt.Errorf("catalog: path %s: field %s.%s is not a reference attribute", spec, cur.Name, ref)
		}
		next, ok := c.types[f.RefType]
		if !ok {
			return nil, fmt.Errorf("catalog: path %s: ref %d targets undefined type %s", spec, i, f.RefType)
		}
		types = append(types, next)
		cur = next
	}
	terminal := cur
	var fields []ReplField
	if spec.Field == AllFields {
		for _, ti := range terminal.ScalarFields() {
			f := terminal.Fields[ti]
			fields = append(fields, ReplField{Terminal: ti, Name: f.Name, Kind: f.Kind})
		}
		if len(fields) == 0 {
			return nil, fmt.Errorf("catalog: path %s: terminal type %s has no scalar fields", spec, terminal.Name)
		}
	} else {
		f, ok := terminal.Field(spec.Field)
		if !ok {
			return nil, fmt.Errorf("catalog: path %s: terminal type %s has no field %q", spec, terminal.Name, spec.Field)
		}
		if f.Kind == schema.KindRef && strategy != InPlace {
			// Replicating a reference attribute collapses an n-level path to
			// n-1 levels (§3.3.3); the paper describes it for in-place
			// replication, where the hidden OID saves a functional join.
			// Under separate replication an OID in S′ would only add
			// indirection.
			return nil, fmt.Errorf("catalog: path %s: reference attribute %q can only be replicated in-place (§3.3.3)", spec, spec.Field)
		}
		fields = append(fields, ReplField{Terminal: terminal.FieldIndex(spec.Field), Name: f.Name, Kind: f.Kind})
	}
	for _, p := range c.paths {
		if p.Spec.String() == spec.String() && p.Strategy == strategy {
			return nil, fmt.Errorf("%w: %s", ErrPathExists, spec)
		}
	}

	p := &Path{Spec: spec, Strategy: strategy, Types: types}
	for _, o := range opts {
		o(p)
	}
	if p.Collapsed && (strategy != InPlace || len(spec.Refs) != 2) {
		return nil, fmt.Errorf("catalog: path %s: collapsed inverted paths require a 2-level in-place path", spec)
	}
	if p.Deferred && strategy != InPlace {
		return nil, fmt.Errorf("catalog: path %s: deferred propagation requires an in-place path (separate replication already updates one shared object)", spec)
	}
	if c.nextPathID == 0 {
		return nil, errors.New("catalog: path/group ID space exhausted")
	}
	p.ID = c.nextPathID
	c.nextPathID++

	switch {
	case p.Collapsed:
		// One collapsed link spanning the whole chain; never shared.
		link, err := c.newLink(spec.Source, spec.Refs, len(spec.Refs)-1, types[0].Name, terminal.Name)
		if err != nil {
			return nil, err
		}
		p.CollapsedLink = link
	case strategy == InPlace:
		for i := range spec.Refs {
			link, err := c.shareOrCreateLink(spec.Source, spec.Refs[:i+1], types[i].Name, types[i+1].Name)
			if err != nil {
				return nil, err
			}
			p.Links = append(p.Links, link)
		}
	case strategy == Separate:
		for i := 0; i < len(spec.Refs)-1; i++ {
			link, err := c.shareOrCreateLink(spec.Source, spec.Refs[:i+1], types[i].Name, types[i+1].Name)
			if err != nil {
				return nil, err
			}
			p.Links = append(p.Links, link)
		}
		g, err := c.shareOrCreateGroup(spec.Source, spec.Refs)
		if err != nil {
			return nil, err
		}
		// Extend the group with this path's fields (shared fields keep
		// their existing index).
		for i := range fields {
			found := false
			for _, gf := range g.Fields {
				if gf.Terminal == fields[i].Terminal {
					fields[i].Idx = gf.Idx
					found = true
					break
				}
			}
			if !found {
				fields[i].Idx = uint8(len(g.Fields))
				g.Fields = append(g.Fields, fields[i])
			}
		}
		p.Group = g
	}
	if strategy == InPlace {
		// Field indexes are per-path for in-place replication.
		for i := range fields {
			fields[i].Idx = uint8(i)
		}
	}
	p.Fields = fields
	c.paths = append(c.paths, p)
	return p, nil
}

func linkKey(source string, prefix []string) string {
	return source + "." + strings.Join(prefix, ".")
}

func (c *Catalog) shareOrCreateLink(source string, prefix []string, fromType, toType string) (*Link, error) {
	key := linkKey(source, prefix)
	if l, ok := c.linksByKey[key]; ok {
		return l, nil
	}
	return c.newLink(source, prefix, len(prefix)-1, fromType, toType)
}

func (c *Catalog) newLink(source string, prefix []string, level int, fromType, toType string) (*Link, error) {
	if c.nextLinkID == 0 {
		return nil, errors.New("catalog: link ID space exhausted")
	}
	l := &Link{
		ID:       c.nextLinkID,
		Source:   source,
		Prefix:   append([]string(nil), prefix...),
		RefField: prefix[len(prefix)-1],
		FromType: fromType,
		ToType:   toType,
		Level:    level,
	}
	c.nextLinkID++
	c.linksByKey[linkKey(source, prefix)] = l
	c.linksByID[l.ID] = l
	return l, nil
}

func (c *Catalog) shareOrCreateGroup(source string, refs []string) (*Group, error) {
	key := linkKey(source, refs)
	if g, ok := c.groups[key]; ok {
		return g, nil
	}
	if c.nextPathID == 0 {
		return nil, errors.New("catalog: path/group ID space exhausted")
	}
	g := &Group{ID: c.nextPathID, Source: source, Refs: append([]string(nil), refs...)}
	c.nextPathID++
	c.groups[key] = g
	return g, nil
}

// Paths returns every registered path.
func (c *Catalog) Paths() []*Path { return c.paths }

// PathsFromSet returns the paths emanating from the named set.
func (c *Catalog) PathsFromSet(set string) []*Path {
	var out []*Path
	for _, p := range c.paths {
		if p.Spec.Source == set {
			out = append(out, p)
		}
	}
	return out
}

// Links returns every registered link.
func (c *Catalog) Links() []*Link {
	out := make([]*Link, 0, len(c.linksByID))
	for _, l := range c.linksByID {
		out = append(out, l)
	}
	return out
}

// Groups returns every registered separate-replication group.
func (c *Catalog) Groups() []*Group {
	out := make([]*Group, 0, len(c.groups))
	for _, g := range c.groups {
		out = append(out, g)
	}
	return out
}

// MarkTainted records that a multi-step replication update touching set
// failed partway, so the set's derived state (hidden values, links, S′
// objects) may be stale. The marker survives catalog persistence and is
// cleared by a successful repair.
func (c *Catalog) MarkTainted(set, why string) {
	if _, dup := c.tainted[set]; !dup {
		c.tainted[set] = why
	}
}

// ClearTaint removes the taint marker for one set.
func (c *Catalog) ClearTaint(set string) { delete(c.tainted, set) }

// ClearAllTaint removes every taint marker.
func (c *Catalog) ClearAllTaint() { c.tainted = make(map[string]string) }

// TaintedSets returns the current taint markers (set name -> reason).
func (c *Catalog) TaintedSets() map[string]string {
	out := make(map[string]string, len(c.tainted))
	for k, v := range c.tainted {
		out[k] = v
	}
	return out
}

// LinkByID resolves a link ID found in an object's (link-OID, link-ID) pair.
func (c *Catalog) LinkByID(id uint8) (*Link, bool) {
	l, ok := c.linksByID[id]
	return l, ok
}

// LinkFor finds the (shared) link inverting the given ref prefix from a
// source set, if any path maintains one. It powers inverse functions
// (bidirectional reference attributes, §8): the link's structures map a
// target object back to its referrers.
func (c *Catalog) LinkFor(source string, prefix []string) (*Link, bool) {
	l, ok := c.linksByKey[linkKey(source, prefix)]
	return l, ok
}

// PathsWithLink returns the paths whose inverted path contains link id
// (including as collapsed link).
func (c *Catalog) PathsWithLink(id uint8) []*Path {
	var out []*Path
	for _, p := range c.paths {
		if p.CollapsedLink != nil && p.CollapsedLink.ID == id {
			out = append(out, p)
			continue
		}
		for _, l := range p.Links {
			if l.ID == id {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// GroupByID resolves a separate-replication group ID.
func (c *Catalog) GroupByID(id uint8) (*Group, bool) {
	for _, g := range c.groups {
		if g.ID == id {
			return g, true
		}
	}
	return nil, false
}

// PathsWithGroup returns the separate paths belonging to group id.
func (c *Catalog) PathsWithGroup(id uint8) []*Path {
	var out []*Path
	for _, p := range c.paths {
		if p.Group != nil && p.Group.ID == id {
			out = append(out, p)
		}
	}
	return out
}

// LinkSequence returns the path's link IDs in order, the paper's "link
// sequence" (§4.1.3).
func (p *Path) LinkSequence() []uint8 {
	if p.CollapsedLink != nil {
		return []uint8{p.CollapsedLink.ID}
	}
	out := make([]uint8, len(p.Links))
	for i, l := range p.Links {
		out[i] = l.ID
	}
	return out
}

// AddIndex registers an index definition.
func (c *Catalog) AddIndex(ix *Index) error {
	if _, dup := c.indexes[ix.Name]; dup {
		return fmt.Errorf("catalog: index %s already exists", ix.Name)
	}
	if _, ok := c.sets[ix.Set]; !ok {
		return fmt.Errorf("catalog: index %s: no set %s", ix.Name, ix.Set)
	}
	c.indexes[ix.Name] = ix
	return nil
}

// IndexByName returns a registered index.
func (c *Catalog) IndexByName(name string) (*Index, bool) {
	ix, ok := c.indexes[name]
	return ix, ok
}

// IndexesOn returns the indexes defined on a set.
func (c *Catalog) IndexesOn(set string) []*Index {
	var out []*Index
	for _, ix := range c.indexes {
		if ix.Set == set {
			out = append(out, ix)
		}
	}
	return out
}

// IndexFor finds an index on (set, base field), if any.
func (c *Catalog) IndexFor(set, field string) (*Index, bool) {
	for _, ix := range c.indexes {
		if ix.Set == set && !ix.IsPathIndex() && ix.Field == field {
			return ix, true
		}
	}
	return nil, false
}

// PathIndexFor finds an index on (set, ref chain, terminal field), if any.
func (c *Catalog) PathIndexFor(set string, refs []string, field string) (*Index, bool) {
	for _, ix := range c.indexes {
		if ix.Set != set || !ix.IsPathIndex() || ix.Field != field || len(ix.Path) != len(refs) {
			continue
		}
		match := true
		for i := range refs {
			if ix.Path[i] != refs[i] {
				match = false
				break
			}
		}
		if match {
			return ix, true
		}
	}
	return nil, false
}

// RemovePath unregisters a path after its replicated state has been torn
// down. Links and groups no longer used by any remaining path are dropped
// from the registries; the caller (engine/core) is responsible for having
// removed their on-disk structures first.
func (c *Catalog) RemovePath(p *Path) error {
	idx := -1
	for i, q := range c.paths {
		if q == p {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("catalog: path %s is not registered", p.Spec)
	}
	c.paths = append(c.paths[:idx], c.paths[idx+1:]...)
	drop := func(l *Link) {
		if len(c.PathsWithLink(l.ID)) > 0 {
			return
		}
		delete(c.linksByID, l.ID)
		delete(c.linksByKey, linkKey(l.Source, l.Prefix))
	}
	for _, l := range p.Links {
		drop(l)
	}
	if p.CollapsedLink != nil {
		drop(p.CollapsedLink)
	}
	if p.Group != nil && len(c.PathsWithGroup(p.Group.ID)) == 0 {
		delete(c.groups, linkKey(p.Group.Source, p.Group.Refs))
	}
	return nil
}

// RemoveIndex unregisters an index definition.
func (c *Catalog) RemoveIndex(name string) error {
	if _, ok := c.indexes[name]; !ok {
		return fmt.Errorf("catalog: no index %s", name)
	}
	delete(c.indexes, name)
	return nil
}

// FindPath locates a registered path by spec (and optionally strategy; pass
// 0 to match either).
func (c *Catalog) FindPath(spec PathSpec, strategy Strategy) (*Path, bool) {
	for _, p := range c.paths {
		if p.Spec.String() == spec.String() && (strategy == 0 || p.Strategy == strategy) {
			return p, true
		}
	}
	return nil, false
}
