package heap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/exodb/fieldrepl/internal/buffer"
	"github.com/exodb/fieldrepl/internal/pagefile"
)

func newFile(t *testing.T, frames int) *File {
	t.Helper()
	store := pagefile.NewMemStore()
	t.Cleanup(func() { store.Close() })
	pool := buffer.New(store, frames)
	f, err := Create(pool, "test")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestInsertReadDelete(t *testing.T) {
	f := newFile(t, 8)
	oid, err := f.Insert([]byte("employee #1"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := f.Read(oid)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != "employee #1" {
		t.Fatalf("Read = %q", got)
	}
	if err := f.Delete(oid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := f.Read(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete: err = %v, want ErrNotFound", err)
	}
	if err := f.Delete(oid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete: err = %v, want ErrNotFound", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	f := newFile(t, 8)
	oid, err := f.Insert(nil)
	if err != nil {
		t.Fatalf("Insert(nil): %v", err)
	}
	got, err := f.Read(oid)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Read = %q, want empty", got)
	}
}

func TestMultiPageInsert(t *testing.T) {
	f := newFile(t, 8)
	rec := bytes.Repeat([]byte{9}, 300)
	var oids []pagefile.OID
	for i := 0; i < 100; i++ {
		oid, err := f.Insert(rec)
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		oids = append(oids, oid)
	}
	n, _ := f.NumPages()
	if n < 8 {
		t.Fatalf("100 records of 300 bytes fit in %d pages, expected >= 8", n)
	}
	for i, oid := range oids {
		got, err := f.Read(oid)
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("record %d unreadable: %v", i, err)
		}
	}
	c, err := f.Count()
	if err != nil || c != 100 {
		t.Fatalf("Count = %d, %v; want 100", c, err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	f := newFile(t, 8)
	oid, _ := f.Insert([]byte("short"))
	if err := f.Update(oid, []byte("a bit longer value")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, _ := f.Read(oid)
	if string(got) != "a bit longer value" {
		t.Fatalf("after update: %q", got)
	}
}

func TestUpdateForwarding(t *testing.T) {
	f := newFile(t, 8)
	// Fill a page with mid-size records so growth forces forwarding.
	var oids []pagefile.OID
	for i := 0; i < 9; i++ {
		oid, err := f.Insert(bytes.Repeat([]byte{byte(i)}, 400))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	target := oids[0]
	big := bytes.Repeat([]byte{0xAA}, 2000)
	if err := f.Update(target, big); err != nil {
		t.Fatalf("growing update: %v", err)
	}
	got, err := f.Read(target)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("read after forwarding: %v", err)
	}
	// The OID must remain stable and other records intact.
	for i := 1; i < len(oids); i++ {
		got, err := f.Read(oids[i])
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 400)) {
			t.Fatalf("record %d damaged by forwarding: %v", i, err)
		}
	}
	// Update the forwarded record again, in place at its new home.
	big2 := bytes.Repeat([]byte{0xBB}, 2001)
	if err := f.Update(target, big2); err != nil {
		t.Fatalf("update of forwarded record: %v", err)
	}
	got, _ = f.Read(target)
	if !bytes.Equal(got, big2) {
		t.Fatal("second update lost")
	}
	// Shrink it back down; still reachable through the stub.
	if err := f.Update(target, []byte("tiny")); err != nil {
		t.Fatalf("shrinking forwarded record: %v", err)
	}
	got, _ = f.Read(target)
	if string(got) != "tiny" {
		t.Fatalf("after shrink: %q", got)
	}
}

func TestForwardedMovesAgain(t *testing.T) {
	f := newFile(t, 16)
	// Page 0: fill with records.
	var oids []pagefile.OID
	for i := 0; i < 9; i++ {
		oid, _ := f.Insert(bytes.Repeat([]byte{1}, 400))
		oids = append(oids, oid)
	}
	target := oids[0]
	// Force forwarding to page 1.
	if err := f.Update(target, bytes.Repeat([]byte{2}, 2000)); err != nil {
		t.Fatal(err)
	}
	// Fill remaining space so the next growth must move the body again.
	for i := 0; i < 50; i++ {
		if _, err := f.Insert(bytes.Repeat([]byte{3}, 900)); err != nil {
			t.Fatal(err)
		}
	}
	huge := bytes.Repeat([]byte{4}, 3900)
	if err := f.Update(target, huge); err != nil {
		t.Fatalf("second forwarding move: %v", err)
	}
	got, err := f.Read(target)
	if err != nil || !bytes.Equal(got, huge) {
		t.Fatalf("read after double move: %v", err)
	}
}

func TestDeleteForwarded(t *testing.T) {
	f := newFile(t, 8)
	var oids []pagefile.OID
	for i := 0; i < 9; i++ {
		oid, _ := f.Insert(bytes.Repeat([]byte{1}, 400))
		oids = append(oids, oid)
	}
	target := oids[0]
	if err := f.Update(target, bytes.Repeat([]byte{2}, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(target); err != nil {
		t.Fatalf("Delete forwarded: %v", err)
	}
	if _, err := f.Read(target); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete: %v", err)
	}
	// Scan must not surface the orphaned body.
	c, _ := f.Count()
	if c != 8 {
		t.Fatalf("Count = %d, want 8", c)
	}
}

func TestScanOrderAndForwarding(t *testing.T) {
	f := newFile(t, 8)
	var oids []pagefile.OID
	for i := 0; i < 30; i++ {
		oid, _ := f.Insert([]byte(fmt.Sprintf("rec-%02d-%s", i, bytes.Repeat([]byte{'x'}, 300))))
		oids = append(oids, oid)
	}
	// Forward one record.
	if err := f.Update(oids[3], append([]byte("rec-03-big-"), bytes.Repeat([]byte{'y'}, 3000)...)); err != nil {
		t.Fatal(err)
	}
	var seen []pagefile.OID
	err := f.Scan(func(oid pagefile.OID, payload []byte) error {
		seen = append(seen, oid)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seen) != 30 {
		t.Fatalf("scan saw %d records, want 30", len(seen))
	}
	// Scan order is home-OID physical order.
	for i := 1; i < len(seen); i++ {
		if !seen[i-1].Less(seen[i]) {
			t.Fatalf("scan out of order at %d: %v !< %v", i, seen[i-1], seen[i])
		}
	}
	// The forwarded record is visited at its home OID.
	found := false
	for _, o := range seen {
		if o == oids[3] {
			found = true
		}
	}
	if !found {
		t.Fatal("forwarded record not visited at home OID")
	}
}

func TestScanEarlyStop(t *testing.T) {
	f := newFile(t, 8)
	for i := 0; i < 10; i++ {
		f.Insert([]byte("x"))
	}
	stop := errors.New("stop")
	n := 0
	err := f.Scan(func(pagefile.OID, []byte) error {
		n++
		if n == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 3 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestInsertNearClustering(t *testing.T) {
	f := newFile(t, 8)
	// Build 3 pages.
	var first pagefile.OID
	for i := 0; i < 27; i++ {
		oid, _ := f.Insert(bytes.Repeat([]byte{1}, 400))
		if i == 0 {
			first = oid
		}
	}
	// Delete a record from page 0 to make room there.
	if err := f.Delete(first); err != nil {
		t.Fatal(err)
	}
	oid, err := f.InsertNear(bytes.Repeat([]byte{2}, 300), 0)
	if err != nil {
		t.Fatal(err)
	}
	if oid.Page != 0 {
		t.Fatalf("InsertNear placed record on page %d, want 0", oid.Page)
	}
	// When the hint page is full, it must fall back gracefully.
	oid2, err := f.InsertNear(bytes.Repeat([]byte{3}, 3000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if oid2.Page == 0 {
		t.Fatal("oversized InsertNear landed on full hint page")
	}
}

func TestWrongFileOID(t *testing.T) {
	f := newFile(t, 8)
	f.Insert([]byte("x"))
	bad := pagefile.OID{File: f.ID() + 1, Page: 0, Slot: 0}
	if _, err := f.Read(bad); err == nil {
		t.Fatal("read with wrong-file OID succeeded")
	}
}

func TestOversizedPayload(t *testing.T) {
	f := newFile(t, 8)
	if _, err := f.Insert(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized insert succeeded")
	}
	oid, err := f.Insert(make([]byte, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Update(oid, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized update succeeded")
	}
}

// TestHeapRandomizedModel runs a random op sequence against a map model,
// exercising growth/shrink/forwarding paths, and checks equivalence.
func TestHeapRandomizedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := newFile(t, 32)
	model := map[pagefile.OID][]byte{}
	var keys []pagefile.OID

	randPayload := func() []byte {
		// Mix of small and large payloads to trigger forwarding.
		var n int
		if rng.Intn(4) == 0 {
			n = 1500 + rng.Intn(2000)
		} else {
			n = rng.Intn(200)
		}
		b := make([]byte, n)
		rng.Read(b)
		return b
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(4); {
		case op <= 1: // insert (50%)
			p := randPayload()
			oid, err := f.Insert(p)
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if _, dup := model[oid]; dup {
				t.Fatalf("step %d: OID %v reused while live", step, oid)
			}
			model[oid] = p
			keys = append(keys, oid)
		case op == 2 && len(model) > 0: // update
			k := keys[rng.Intn(len(keys))]
			if _, live := model[k]; !live {
				continue
			}
			p := randPayload()
			if err := f.Update(k, p); err != nil {
				t.Fatalf("step %d update %v: %v", step, k, err)
			}
			model[k] = p
		case op == 3 && len(model) > 0: // delete
			k := keys[rng.Intn(len(keys))]
			if _, live := model[k]; !live {
				continue
			}
			if err := f.Delete(k); err != nil {
				t.Fatalf("step %d delete %v: %v", step, k, err)
			}
			delete(model, k)
		}
	}
	// Full verification at the end.
	for k, want := range model {
		got, err := f.Read(k)
		if err != nil {
			t.Fatalf("final read %v: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final content mismatch at %v", k)
		}
	}
	seen := 0
	err := f.Scan(func(oid pagefile.OID, payload []byte) error {
		want, ok := model[oid]
		if !ok {
			return fmt.Errorf("scan surfaced unknown OID %v", oid)
		}
		if !bytes.Equal(payload, want) {
			return fmt.Errorf("scan payload mismatch at %v", oid)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(model) {
		t.Fatalf("scan saw %d records, model has %d", seen, len(model))
	}
}

func TestOpenExisting(t *testing.T) {
	store := pagefile.NewMemStore()
	defer store.Close()
	pool := buffer.New(store, 8)
	f, err := Create(pool, "persist")
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := f.Insert([]byte("survives"))
	pool.FlushAll()

	f2, err := Open(pool, f.ID())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if f2.Name() != "persist" {
		t.Fatalf("Name = %q", f2.Name())
	}
	got, err := f2.Read(oid)
	if err != nil || string(got) != "survives" {
		t.Fatalf("read through reopened file: %q, %v", got, err)
	}
	// Appends through the reopened handle continue on the last page.
	if _, err := f2.Insert([]byte("more")); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	f := newFile(t, 16)
	var oids []pagefile.OID
	for i := 0; i < 20; i++ {
		oid, err := f.Insert(bytes.Repeat([]byte{1}, 200))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 20 || st.Forwarded != 0 || st.DeadSlots != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PayloadSize != 20*200 || st.AvgPayload() != 200 {
		t.Fatalf("payload accounting: %+v", st)
	}
	// Delete two, forward one.
	f.Delete(oids[0])
	f.Delete(oids[1])
	if err := f.Update(oids[2], bytes.Repeat([]byte{2}, 3900)); err != nil {
		t.Fatal(err)
	}
	st, err = f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 18 || st.Forwarded != 1 {
		t.Fatalf("after churn: %+v", st)
	}
	if st.DeadSlots == 0 || st.FreeBytes == 0 {
		t.Fatalf("dead/free accounting: %+v", st)
	}
	// Empty file.
	f2 := newFile(t, 8)
	st2, err := f2.Stats()
	if err != nil || st2.Live != 0 || st2.AvgPayload() != 0 {
		t.Fatalf("empty stats: %+v, %v", st2, err)
	}
}
