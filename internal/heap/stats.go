package heap

import (
	"github.com/exodb/fieldrepl/internal/pagefile"
)

// Stats describes a heap file's physical state.
type Stats struct {
	Pages       uint32 // pages in the file
	Live        int    // live records (home OIDs)
	Forwarded   int    // records whose body moved behind a stub
	DeadSlots   int    // slot-directory entries without a record
	PayloadSize int64  // total live payload bytes
	FreeBytes   int64  // reclaimable bytes across all pages (incl. compaction)
}

// AvgPayload returns the mean live payload size.
func (s Stats) AvgPayload() float64 {
	if s.Live == 0 {
		return 0
	}
	return float64(s.PayloadSize) / float64(s.Live)
}

// Stats scans the file and reports its physical statistics.
func (f *File) Stats() (Stats, error) {
	var st Stats
	n, err := f.NumPages()
	if err != nil {
		return st, err
	}
	st.Pages = n
	for page := uint32(0); page < n; page++ {
		h, err := f.pool.GetT(pagefile.PageID{File: f.id, Page: page}, f.tr)
		if err != nil {
			return st, err
		}
		sp := pagefile.AsSlotted(h.Page())
		st.FreeBytes += int64(sp.FreeSpace())
		nslots := sp.NumSlots()
		for slot := uint16(0); slot < nslots; slot++ {
			if !sp.Live(slot) {
				st.DeadSlots++
				continue
			}
			rec, err := sp.Read(slot)
			if err != nil {
				h.Unpin()
				return st, err
			}
			switch rec[0] {
			case kindHome:
				p, err := decodePayload(rec)
				if err != nil {
					h.Unpin()
					return st, err
				}
				st.Live++
				st.PayloadSize += int64(len(p))
			case kindStub:
				st.Live++
				st.Forwarded++
			case kindMoved:
				p, err := decodePayload(rec)
				if err != nil {
					h.Unpin()
					return st, err
				}
				st.PayloadSize += int64(len(p))
			}
		}
		h.Unpin()
	}
	return st, nil
}
