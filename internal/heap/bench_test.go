package heap

import (
	"testing"

	"github.com/exodb/fieldrepl/internal/buffer"
	"github.com/exodb/fieldrepl/internal/pagefile"
)

func benchFile(b *testing.B) *File {
	b.Helper()
	store := pagefile.NewMemStore()
	b.Cleanup(func() { store.Close() })
	pool := buffer.New(store, 1024)
	f, err := Create(pool, "bench")
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func BenchmarkInsert100B(b *testing.B) {
	f := benchFile(b)
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Insert(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead100B(b *testing.B) {
	f := benchFile(b)
	payload := make([]byte, 100)
	var oids []pagefile.OID
	for i := 0; i < 10000; i++ {
		oid, err := f.Insert(payload)
		if err != nil {
			b.Fatal(err)
		}
		oids = append(oids, oid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Read(oids[i%len(oids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateSameSize(b *testing.B) {
	f := benchFile(b)
	payload := make([]byte, 100)
	oid, err := f.Insert(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload[0] = byte(i)
		if err := f.Update(oid, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan10k(b *testing.B) {
	f := benchFile(b)
	payload := make([]byte, 100)
	for i := 0; i < 10000; i++ {
		if _, err := f.Insert(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := f.Scan(func(pagefile.OID, []byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 10000 {
			b.Fatalf("scanned %d", n)
		}
	}
}
