// Package heap implements heap files: unordered collections of
// variable-length records addressed by stable physical OIDs, stored on
// slotted pages accessed through a buffer pool.
//
// Records keep their OID for life. When an update grows a record beyond its
// page's capacity the body moves to another page and a forwarding stub is
// left at the home slot, as in the EXODUS storage manager. Forwarding chains
// never exceed one hop: if a moved body must move again, the home stub is
// repointed. This matters for in-place field replication, which widens
// objects after they were first stored.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/exodb/fieldrepl/internal/buffer"
	"github.com/exodb/fieldrepl/internal/obs"
	"github.com/exodb/fieldrepl/internal/pagefile"
)

// Record kinds. The first byte of every slot's contents identifies it.
const (
	kindHome  = 0 // record body living at its home (OID) slot
	kindStub  = 1 // forwarding stub; payload is the OID of the moved body
	kindMoved = 2 // moved record body; reached only through its stub
)

const (
	homeHeaderSize  = 3                    // kind byte + u16 payload length
	stubSize        = 1 + pagefile.OIDSize // kind byte + target OID
	movedHeaderSize = 3                    // kind byte + u16 payload length
	movedTrailer    = pagefile.OIDSize     // home OID, for integrity checks
	minRecordSize   = stubSize             // every live record is >= this, so a stub always fits in place
)

// MaxPayload is the largest record payload a heap file accepts.
const MaxPayload = pagefile.MaxRecordSize - movedHeaderSize - movedTrailer

// ErrNotFound is returned when an OID does not address a live record.
var ErrNotFound = errors.New("heap: record not found")

// slotReadErr classifies a failed slot read: page corruption surfaces as
// pagefile.ErrCorruptPage (permanent, distinguishable), anything else as a
// missing record.
func slotReadErr(oid pagefile.OID, err error) error {
	if errors.Is(err, pagefile.ErrCorruptPage) {
		return fmt.Errorf("heap: reading %v: %w", oid, err)
	}
	return fmt.Errorf("%w: %v (%v)", ErrNotFound, oid, err)
}

// pinMode selects how a view pins pages in the buffer pool.
type pinMode int

const (
	// modePlain pins frames directly (GetT/NewPageT) — the historical
	// behavior, correct under the engine's coarse exclusive lock.
	modePlain pinMode = iota
	// modeCapture pins through the pool's scoped capture (GetCaptureT):
	// modifications work on a private copy installed at MarkDirty, so
	// concurrent snapshot readers never see uncommitted bytes. Used by
	// fine-grained writers holding the per-set locks for this file.
	modeCapture
	// modeSnapshot reads through GetSnapshotT: detached copies of the
	// committed state, never blocking on (or racing with) writers.
	modeSnapshot
)

// File is a heap file. WithTrace returns lightweight views of the same file
// that charge their page I/O to an obs.Trace; all views share one append
// cursor, so inserts through any view stay coherent.
type File struct {
	pool *buffer.Pool
	id   pagefile.FileID
	name string
	app  *appendCursor
	tr   *obs.Trace
	mode pinMode
}

// appendCursor tracks the page inserts are currently appended to. It is
// shared (by pointer) across all WithTrace views of a file. It is advisory:
// the engine serializes writers, and a stale cursor only costs an extra
// page probe, never corrupts data.
type appendCursor struct {
	page uint32
	has  bool
}

// Create makes a new, empty heap file named name in the pool's store.
func Create(pool *buffer.Pool, name string) (*File, error) {
	id, err := pool.Store().CreateFile(name)
	if err != nil {
		return nil, err
	}
	return &File{pool: pool, id: id, name: name, app: &appendCursor{}}, nil
}

// Open wraps an existing file id as a heap file. The file must have been
// created by Create (possibly in a prior session with a persistent store).
func Open(pool *buffer.Pool, id pagefile.FileID) (*File, error) {
	n, err := pool.Store().NumPages(id)
	if err != nil {
		return nil, err
	}
	name, err := pool.Store().FileName(id)
	if err != nil {
		return nil, err
	}
	f := &File{pool: pool, id: id, name: name, app: &appendCursor{}}
	if n > 0 {
		f.app.has = true
		f.app.page = n - 1
	}
	return f, nil
}

// WithTrace returns a view of the file whose page I/O (buffer gets, new
// pages, prefetches) is charged to tr in addition to the global counters.
// The view shares the underlying file's pool and append cursor, and keeps
// the receiver's pin mode, so re-tracing a capture or snapshot view never
// strips its isolation; tr may be nil, which returns an untraced view (often
// f itself).
func (f *File) WithTrace(tr *obs.Trace) *File {
	if f == nil || f.tr == tr {
		return f
	}
	v := *f
	v.tr = tr
	return &v
}

// WithCapture returns a view whose page access goes through the pool's
// scoped capture: writes work on private copies installed at MarkDirty, and
// the modified pages are registered for the enclosing scope's commit or
// rollback. The caller must hold the engine's per-set lock covering this
// file for the lifetime of the view.
func (f *File) WithCapture(tr *obs.Trace) *File {
	if f == nil {
		return nil
	}
	v := *f
	v.tr = tr
	v.mode = modeCapture
	return &v
}

// WithSnapshot returns a read-only view that never blocks on writers: every
// page access yields a detached copy of the committed state (an uncommitted
// concurrent scope's pages read as their transaction-begin image). The
// mutating entry points refuse loudly through a snapshot view — a write
// there would touch a detached copy and silently vanish.
func (f *File) WithSnapshot(tr *obs.Trace) *File {
	if f == nil {
		return nil
	}
	v := *f
	v.tr = tr
	v.mode = modeSnapshot
	return &v
}

// guardWrite refuses mutation through a snapshot view: the pinned copies are
// detached from the pool, so a write would be silently discarded.
func (f *File) guardWrite() error {
	if f.mode == modeSnapshot {
		return fmt.Errorf("heap: write to %s through a snapshot view", f.name)
	}
	return nil
}

// get pins a page according to the view's mode.
func (f *File) get(pid pagefile.PageID) (*buffer.Handle, error) {
	switch f.mode {
	case modeCapture:
		return f.pool.GetCaptureT(pid, f.tr)
	case modeSnapshot:
		return f.pool.GetSnapshotT(pid, f.tr)
	default:
		return f.pool.GetT(pid, f.tr)
	}
}

// newPage allocates a fresh page according to the view's mode.
func (f *File) newPage() (*buffer.Handle, pagefile.PageID, error) {
	if f.mode == modeCapture {
		return f.pool.NewPageCaptureT(f.id, f.tr)
	}
	return f.pool.NewPageT(f.id, f.tr)
}

// ID returns the file's id in the store.
func (f *File) ID() pagefile.FileID { return f.id }

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// NumPages returns the number of pages in the file.
func (f *File) NumPages() (uint32, error) { return f.pool.Store().NumPages(f.id) }

func encodeHome(payload []byte) []byte {
	n := homeHeaderSize + len(payload)
	if n < minRecordSize {
		n = minRecordSize
	}
	rec := make([]byte, n)
	rec[0] = kindHome
	binary.LittleEndian.PutUint16(rec[1:3], uint16(len(payload)))
	copy(rec[3:], payload)
	return rec
}

func encodeStub(target pagefile.OID) []byte {
	rec := make([]byte, 1, stubSize)
	rec[0] = kindStub
	return target.AppendTo(rec)
}

func encodeMoved(payload []byte, home pagefile.OID) []byte {
	rec := make([]byte, movedHeaderSize, movedHeaderSize+len(payload)+movedTrailer)
	rec[0] = kindMoved
	binary.LittleEndian.PutUint16(rec[1:3], uint16(len(payload)))
	rec = append(rec, payload...)
	return home.AppendTo(rec)
}

func decodePayload(rec []byte) ([]byte, error) {
	if len(rec) < homeHeaderSize {
		return nil, fmt.Errorf("%w: heap record of %d bytes", pagefile.ErrCorruptPage, len(rec))
	}
	n := int(binary.LittleEndian.Uint16(rec[1:3]))
	if homeHeaderSize+n > len(rec) {
		return nil, fmt.Errorf("%w: heap record payload length %d exceeds record", pagefile.ErrCorruptPage, n)
	}
	return rec[3 : 3+n], nil
}

// Insert appends a record and returns its OID.
func (f *File) Insert(payload []byte) (pagefile.OID, error) {
	if err := f.guardWrite(); err != nil {
		return pagefile.OID{}, err
	}
	if len(payload) > MaxPayload {
		return pagefile.OID{}, fmt.Errorf("heap: payload of %d bytes exceeds max %d", len(payload), MaxPayload)
	}
	return f.insertRecord(encodeHome(payload), true)
}

// InsertNear inserts a record, preferring page hint if it has room. It is
// used to keep derived files (link objects, separate-replication S′ sets) in
// the same physical order as the objects they shadow.
func (f *File) InsertNear(payload []byte, hint uint32) (pagefile.OID, error) {
	if err := f.guardWrite(); err != nil {
		return pagefile.OID{}, err
	}
	if len(payload) > MaxPayload {
		return pagefile.OID{}, fmt.Errorf("heap: payload of %d bytes exceeds max %d", len(payload), MaxPayload)
	}
	rec := encodeHome(payload)
	if f.app.has && hint <= f.app.page {
		if oid, ok, err := f.tryInsertOn(hint, rec); err != nil {
			return pagefile.OID{}, err
		} else if ok {
			return oid, nil
		}
	}
	return f.insertRecord(rec, true)
}

func (f *File) insertRecord(rec []byte, retryNewPage bool) (pagefile.OID, error) {
	if len(rec) > pagefile.MaxRecordSize {
		return pagefile.OID{}, fmt.Errorf("heap: record of %d bytes exceeds page capacity", len(rec))
	}
	if f.app.has {
		if oid, ok, err := f.tryInsertOn(f.app.page, rec); err != nil {
			return pagefile.OID{}, err
		} else if ok {
			return oid, nil
		}
	}
	if !retryNewPage {
		return pagefile.OID{}, pagefile.ErrPageFull
	}
	h, pid, err := f.newPage()
	if err != nil {
		return pagefile.OID{}, err
	}
	defer h.Unpin()
	sp := pagefile.InitSlotted(h.Page())
	slot, err := sp.Insert(rec)
	if err != nil {
		return pagefile.OID{}, err
	}
	h.MarkDirty()
	f.app.page = pid.Page
	f.app.has = true
	return pagefile.OID{File: f.id, Page: pid.Page, Slot: slot}, nil
}

func (f *File) tryInsertOn(page uint32, rec []byte) (pagefile.OID, bool, error) {
	h, err := f.get(pagefile.PageID{File: f.id, Page: page})
	if err != nil {
		return pagefile.OID{}, false, err
	}
	defer h.Unpin()
	sp := pagefile.AsSlotted(h.Page())
	if !sp.IsFormatted() {
		// An unformatted page: either a rolled-back in-transaction allocation
		// or a crash-orphaned Allocate, both all-zero. Treat it as full —
		// inserting through the raw layout would corrupt it.
		return pagefile.OID{}, false, nil
	}
	if !sp.CanFit(len(rec)) {
		return pagefile.OID{}, false, nil
	}
	slot, err := sp.Insert(rec)
	if errors.Is(err, pagefile.ErrPageFull) {
		return pagefile.OID{}, false, nil
	}
	if err != nil {
		return pagefile.OID{}, false, err
	}
	h.MarkDirty()
	return pagefile.OID{File: f.id, Page: page, Slot: slot}, true, nil
}

// Read returns a copy of the record payload at oid, following a forwarding
// stub if present.
func (f *File) Read(oid pagefile.OID) ([]byte, error) {
	payload, _, err := f.readResolved(oid)
	return payload, err
}

// readResolved returns the payload and the OID of the slot where the body
// actually lives (== oid unless forwarded).
func (f *File) readResolved(oid pagefile.OID) ([]byte, pagefile.OID, error) {
	rec, err := f.rawRead(oid)
	if err != nil {
		return nil, pagefile.OID{}, err
	}
	switch rec[0] {
	case kindHome:
		p, err := decodePayload(rec)
		return p, oid, err
	case kindStub:
		target, err := pagefile.DecodeOID(rec[1:])
		if err != nil {
			return nil, pagefile.OID{}, err
		}
		body, err := f.rawRead(target)
		if err != nil {
			return nil, pagefile.OID{}, err
		}
		if body[0] != kindMoved {
			return nil, pagefile.OID{}, fmt.Errorf("%w: stub %v points at non-moved record", pagefile.ErrCorruptPage, oid)
		}
		p, err := decodePayload(body)
		return p, target, err
	case kindMoved:
		return nil, pagefile.OID{}, fmt.Errorf("%w: %v addresses a moved body, not a record", ErrNotFound, oid)
	default:
		return nil, pagefile.OID{}, fmt.Errorf("%w: unknown record kind %d at %v", pagefile.ErrCorruptPage, rec[0], oid)
	}
}

// rawRead returns a copy of the raw slot contents at oid.
func (f *File) rawRead(oid pagefile.OID) ([]byte, error) {
	if oid.File != f.id {
		return nil, fmt.Errorf("heap: OID %v is not in file %d", oid, f.id)
	}
	h, err := f.get(oid.PageID())
	if err != nil {
		return nil, err
	}
	defer h.Unpin()
	sp := pagefile.AsSlotted(h.Page())
	rec, err := sp.Read(oid.Slot)
	if err != nil {
		return nil, slotReadErr(oid, err)
	}
	if len(rec) == 0 {
		return nil, fmt.Errorf("%w: empty heap record at %v", pagefile.ErrCorruptPage, oid)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Update replaces the payload at oid, keeping the OID stable. If the new
// payload no longer fits on the home page, the body is moved and a
// forwarding stub is installed.
func (f *File) Update(oid pagefile.OID, payload []byte) error {
	if err := f.guardWrite(); err != nil {
		return err
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("heap: payload of %d bytes exceeds max %d", len(payload), MaxPayload)
	}
	h, err := f.get(oid.PageID())
	if err != nil {
		return err
	}
	sp := pagefile.AsSlotted(h.Page())
	rec, err := sp.Read(oid.Slot)
	if err != nil {
		h.Unpin()
		return slotReadErr(oid, err)
	}
	if len(rec) == 0 {
		h.Unpin()
		return fmt.Errorf("%w: empty heap record at %v", pagefile.ErrCorruptPage, oid)
	}
	switch rec[0] {
	case kindHome:
		if err := sp.Update(oid.Slot, encodeHome(payload)); err == nil {
			h.MarkDirty()
			h.Unpin()
			return nil
		} else if !errors.Is(err, pagefile.ErrPageFull) {
			h.Unpin()
			return err
		}
		// Move the body out and leave a stub. The stub (11 bytes) always fits
		// because every live record is at least minRecordSize bytes.
		h.Unpin()
		target, err := f.insertBody(encodeMoved(payload, oid), oid.PageID().Page)
		if err != nil {
			return err
		}
		h2, err := f.get(oid.PageID())
		if err != nil {
			return err
		}
		defer h2.Unpin()
		sp2 := pagefile.AsSlotted(h2.Page())
		if err := sp2.Update(oid.Slot, encodeStub(target)); err != nil {
			return fmt.Errorf("heap: installing forwarding stub at %v: %v", oid, err)
		}
		h2.MarkDirty()
		return nil
	case kindStub:
		target, derr := pagefile.DecodeOID(rec[1:])
		h.Unpin()
		if derr != nil {
			return derr
		}
		return f.updateMoved(oid, target, payload)
	case kindMoved:
		h.Unpin()
		return fmt.Errorf("%w: %v addresses a moved body, not a record", ErrNotFound, oid)
	default:
		h.Unpin()
		return fmt.Errorf("%w: unknown record kind %d at %v", pagefile.ErrCorruptPage, rec[0], oid)
	}
}

// updateMoved updates a record whose body lives at target, repointing the
// stub at home if the body must move again.
func (f *File) updateMoved(home, target pagefile.OID, payload []byte) error {
	h, err := f.get(target.PageID())
	if err != nil {
		return err
	}
	sp := pagefile.AsSlotted(h.Page())
	if err := sp.Update(target.Slot, encodeMoved(payload, home)); err == nil {
		h.MarkDirty()
		h.Unpin()
		return nil
	} else if !errors.Is(err, pagefile.ErrPageFull) {
		h.Unpin()
		return err
	}
	// Body moves again: delete the old body, insert a new one, repoint stub.
	if err := sp.Delete(target.Slot); err != nil {
		h.Unpin()
		return err
	}
	h.MarkDirty()
	h.Unpin()
	newTarget, err := f.insertBody(encodeMoved(payload, home), home.Page)
	if err != nil {
		return err
	}
	hh, err := f.get(home.PageID())
	if err != nil {
		return err
	}
	defer hh.Unpin()
	hsp := pagefile.AsSlotted(hh.Page())
	if err := hsp.Update(home.Slot, encodeStub(newTarget)); err != nil {
		return fmt.Errorf("heap: repointing stub at %v: %v", home, err)
	}
	hh.MarkDirty()
	return nil
}

// insertBody stores an already encoded record (used for moved bodies),
// preferring pages near the home page.
func (f *File) insertBody(rec []byte, nearPage uint32) (pagefile.OID, error) {
	// Try the page after the home page first so forwarded bodies stay close,
	// then fall back to the append page / a fresh page.
	if f.app.has && nearPage+1 <= f.app.page {
		if oid, ok, err := f.tryInsertOn(nearPage+1, rec); err != nil {
			return pagefile.OID{}, err
		} else if ok {
			return oid, nil
		}
	}
	return f.insertRecord(rec, true)
}

// Delete removes the record at oid, including a moved body if forwarded.
func (f *File) Delete(oid pagefile.OID) error {
	if err := f.guardWrite(); err != nil {
		return err
	}
	h, err := f.get(oid.PageID())
	if err != nil {
		return err
	}
	sp := pagefile.AsSlotted(h.Page())
	rec, err := sp.Read(oid.Slot)
	if err != nil {
		h.Unpin()
		return slotReadErr(oid, err)
	}
	if len(rec) == 0 {
		h.Unpin()
		return fmt.Errorf("%w: empty heap record at %v", pagefile.ErrCorruptPage, oid)
	}
	kind := rec[0]
	var target pagefile.OID
	if kind == kindStub {
		target, err = pagefile.DecodeOID(rec[1:])
		if err != nil {
			h.Unpin()
			return err
		}
	}
	if kind == kindMoved {
		h.Unpin()
		return fmt.Errorf("%w: %v addresses a moved body, not a record", ErrNotFound, oid)
	}
	if err := sp.Delete(oid.Slot); err != nil {
		h.Unpin()
		return err
	}
	h.MarkDirty()
	h.Unpin()
	if kind == kindStub {
		ht, err := f.get(target.PageID())
		if err != nil {
			return err
		}
		defer ht.Unpin()
		spt := pagefile.AsSlotted(ht.Page())
		if err := spt.Delete(target.Slot); err != nil {
			return err
		}
		ht.MarkDirty()
	}
	return nil
}

// Scan calls fn for every live record in physical (page, slot) order of the
// records' home OIDs. Forwarded records are visited at their home position.
// If fn returns an error, the scan stops and returns it.
//
// When the pool's readahead is enabled, the scan pulls the next batch of
// pages into frames with one batched store read before crossing into it, so
// a disk-backed scan issues one vectored read per batch instead of one
// syscall per page. Total pages read are unchanged.
func (f *File) Scan(fn func(oid pagefile.OID, payload []byte) error) error {
	n, err := f.NumPages()
	if err != nil {
		return err
	}
	// Readahead only for plain-mode views: the engine's coarse lock excludes
	// concurrent write-backs there, which the batched prefetch read requires.
	// Snapshot and capture views run concurrently with other sessions'
	// evictions and read page-at-a-time through the pool instead.
	ra := uint32(f.pool.Readahead())
	if f.mode != modePlain {
		ra = 0
	}
	for page := uint32(0); page < n; page++ {
		if ra > 0 && page%ra == 0 {
			f.pool.PrefetchT(f.id, page, int(ra), f.tr)
		}
		if err := f.scanPage(page, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanParallel scans like Scan but fans page ranges out to workers
// goroutines. fn is called concurrently from multiple goroutines and must be
// safe for that; records are delivered in no particular order (within one
// page, slot order is preserved). Forwarded records are still visited at
// their home position exactly once. The file must not be mutated during the
// scan. The first error stops all workers and is returned.
func (f *File) ScanParallel(workers int, fn func(oid pagefile.OID, payload []byte) error) error {
	if workers <= 1 {
		return f.Scan(fn)
	}
	n, err := f.NumPages()
	if err != nil || n == 0 {
		return err
	}
	if uint32(workers) > n {
		workers = int(n)
	}
	// Workers claim fixed chunks of pages; with readahead on, a claimed
	// chunk is prefetched with one batched read before it is scanned.
	// As in Scan, prefetch is plain-mode only.
	ra := f.pool.Readahead()
	if f.mode != modePlain {
		ra = 0
	}
	chunk := uint32(ra)
	if chunk == 0 {
		chunk = 8
	}
	var (
		next atomic.Uint32
		stop atomic.Bool
		wg   sync.WaitGroup
		errs = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				start := next.Add(chunk) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				if ra > 0 {
					f.pool.PrefetchT(f.id, start, int(end-start), f.tr)
				}
				for page := start; page < end; page++ {
					if stop.Load() {
						return
					}
					if err := f.scanPage(page, fn); err != nil {
						errs[w] = err
						stop.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// scanPage visits the live records of one page: bodies are copied out under
// the pin, the pin is dropped, and then fn runs (so fn may itself use the
// pool), with forwarded records resolved through their stubs.
func (f *File) scanPage(page uint32, fn func(oid pagefile.OID, payload []byte) error) error {
	h, err := f.get(pagefile.PageID{File: f.id, Page: page})
	if err != nil {
		return err
	}
	sp := pagefile.AsSlotted(h.Page())
	nslots := sp.NumSlots()
	type item struct {
		oid  pagefile.OID
		body []byte // nil if forwarded; resolved below
		fwd  pagefile.OID
	}
	var items []item
	for slot := uint16(0); slot < nslots; slot++ {
		if !sp.Live(slot) {
			continue
		}
		rec, err := sp.Read(slot)
		if err != nil {
			h.Unpin()
			return err
		}
		oid := pagefile.OID{File: f.id, Page: page, Slot: slot}
		if len(rec) == 0 {
			h.Unpin()
			return fmt.Errorf("%w: empty heap record at %v", pagefile.ErrCorruptPage, oid)
		}
		switch rec[0] {
		case kindHome:
			p, err := decodePayload(rec)
			if err != nil {
				h.Unpin()
				return err
			}
			body := make([]byte, len(p))
			copy(body, p)
			items = append(items, item{oid: oid, body: body})
		case kindStub:
			t, err := pagefile.DecodeOID(rec[1:])
			if err != nil {
				h.Unpin()
				return err
			}
			items = append(items, item{oid: oid, fwd: t})
		case kindMoved:
			// Visited through its stub.
		}
	}
	h.Unpin()
	for _, it := range items {
		body := it.body
		if body == nil {
			var err error
			body, _, err = f.readResolved(it.oid)
			if err != nil {
				return err
			}
		}
		if err := fn(it.oid, body); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of live records.
func (f *File) Count() (int, error) {
	n := 0
	err := f.Scan(func(pagefile.OID, []byte) error { n++; return nil })
	return n, err
}
