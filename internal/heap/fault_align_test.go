package heap

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/exodb/fieldrepl/internal/buffer"
	"github.com/exodb/fieldrepl/internal/obs"
	"github.com/exodb/fieldrepl/internal/pagefile"
)

// faultScanResult captures everything observable about one scan against a
// fault plan: the error class, how many records were visited before it, the
// store's final operation index, and how many faults fired.
type faultScanResult struct {
	injectedErr bool
	otherErr    bool
	visited     int
	ops         int64
	injected    int64
}

// runFaultScan builds a fresh multi-page heap file over a FaultStore,
// schedules a read fault k read-operations after the build, and scans —
// traced when tr is non-nil. The build is deterministic, so two calls with
// the same parameters exercise identical store operation sequences.
func runFaultScan(t *testing.T, readahead int, k int64, traced bool) faultScanResult {
	t.Helper()
	mem := pagefile.NewMemStore()
	t.Cleanup(func() { mem.Close() })
	fs := pagefile.NewFaultStore(mem)
	pool := buffer.New(fs, 64)
	pool.SetReadahead(readahead)
	f, err := Create(pool, "t")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 700)
	for i := 0; i < 40; i++ {
		if _, err := f.Insert(append(payload, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Reset(); err != nil {
		t.Fatal(err)
	}

	fs.AddFault(pagefile.Fault{Index: fs.Ops() + k, Op: pagefile.OpRead})

	scanFile := f
	var tr *obs.Trace
	if traced {
		tr = obs.NewRegistry(pagefile.PageSize).Start(obs.KindQuery, "t", "")
		scanFile = f.WithTrace(tr)
	}
	var res faultScanResult
	err = scanFile.Scan(func(oid pagefile.OID, payload []byte) error {
		res.visited++
		return nil
	})
	res.injectedErr = errors.Is(err, pagefile.ErrInjected)
	res.otherErr = err != nil && !res.injectedErr
	res.ops = fs.Ops()
	res.injected = fs.Injected()
	return res
}

// TestFaultPlanAlignmentTracedScan pins that tracing does not shift fault
// plans: attribution happens at the pool level, so the store sees the exact
// same operation sequence whether a scan is traced or not — a fault scheduled
// at read N fires at the same point, the scan fails (or survives) the same
// way, and the same number of records is visited. Checked with readahead off
// (page-at-a-time ReadPage) and on (batched ReadPages, which FaultStore steps
// per page).
func TestFaultPlanAlignmentTracedScan(t *testing.T) {
	for _, readahead := range []int{0, 4} {
		for _, k := range []int64{0, 3, 7} {
			name := fmt.Sprintf("readahead=%d/faultAtRead+%d", readahead, k)
			t.Run(name, func(t *testing.T) {
				plain := runFaultScan(t, readahead, k, false)
				traced := runFaultScan(t, readahead, k, true)
				if plain != traced {
					t.Fatalf("traced scan diverged from untraced:\nuntraced: %+v\ntraced:   %+v", plain, traced)
				}
				if plain.injected == 0 {
					t.Fatalf("fault never fired: %+v", plain)
				}
			})
		}
	}
}
