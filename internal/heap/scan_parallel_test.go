package heap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/exodb/fieldrepl/internal/buffer"
	"github.com/exodb/fieldrepl/internal/pagefile"
)

// buildScanFixture fills a file with records of mixed sizes and then grows a
// third of them past their page's free space, so the file contains forwarded
// records (stubs + moved bodies). Returns the expected payload per OID.
func buildScanFixture(t testing.TB, f *File, nrec int) map[pagefile.OID][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	want := make(map[pagefile.OID][]byte, nrec)
	var oids []pagefile.OID
	for i := 0; i < nrec; i++ {
		payload := make([]byte, 40+rng.Intn(200))
		rng.Read(payload)
		oid, err := f.Insert(payload)
		if err != nil {
			t.Fatal(err)
		}
		want[oid] = payload
		oids = append(oids, oid)
	}
	// Grow every third record well past page free space to force moves.
	for i := 0; i < len(oids); i += 3 {
		payload := make([]byte, 1500+rng.Intn(800))
		rng.Read(payload)
		if err := f.Update(oids[i], payload); err != nil {
			t.Fatal(err)
		}
		want[oids[i]] = payload
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Forwarded == 0 {
		t.Fatal("fixture has no forwarded records; the equivalence test would not cover stubs")
	}
	return want
}

// collectScan runs the given scan function and returns OID->payload,
// failing on duplicate visits.
func collectScan(t *testing.T, scan func(fn func(pagefile.OID, []byte) error) error) map[pagefile.OID][]byte {
	t.Helper()
	var mu sync.Mutex
	got := make(map[pagefile.OID][]byte)
	err := scan(func(oid pagefile.OID, payload []byte) error {
		cp := append([]byte(nil), payload...)
		mu.Lock()
		defer mu.Unlock()
		if _, dup := got[oid]; dup {
			return fmt.Errorf("record %v visited twice", oid)
		}
		got[oid] = cp
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestScanParallelEquivalence checks that ScanParallel visits exactly the
// records Scan visits — same OIDs, same payloads, forwarded records at their
// home position exactly once — for several worker counts and readahead
// settings.
func TestScanParallelEquivalence(t *testing.T) {
	f := newFile(t, 64)
	want := buildScanFixture(t, f, 600)

	seq := collectScan(t, f.Scan)
	if len(seq) != len(want) {
		t.Fatalf("Scan visited %d records, want %d", len(seq), len(want))
	}
	for oid, payload := range want {
		if !bytes.Equal(seq[oid], payload) {
			t.Fatalf("Scan payload mismatch at %v", oid)
		}
	}

	for _, workers := range []int{1, 2, 4, 7} {
		for _, ra := range []int{0, 4} {
			t.Run(fmt.Sprintf("workers=%d/readahead=%d", workers, ra), func(t *testing.T) {
				f.pool.SetReadahead(ra)
				defer f.pool.SetReadahead(0)
				par := collectScan(t, func(fn func(pagefile.OID, []byte) error) error {
					return f.ScanParallel(workers, fn)
				})
				if len(par) != len(seq) {
					t.Fatalf("ScanParallel visited %d records, want %d", len(par), len(seq))
				}
				for oid, payload := range seq {
					if !bytes.Equal(par[oid], payload) {
						t.Fatalf("payload mismatch at %v", oid)
					}
				}
			})
		}
	}
}

// TestScanParallelStopsOnError checks that a callback error cancels the scan
// promptly and is the error returned.
func TestScanParallelStopsOnError(t *testing.T) {
	f := newFile(t, 64)
	buildScanFixture(t, f, 400)
	boom := errors.New("boom")
	var calls atomic.Int64
	err := f.ScanParallel(4, func(oid pagefile.OID, payload []byte) error {
		if calls.Add(1) == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	st, err2 := f.Stats()
	if err2 != nil {
		t.Fatal(err2)
	}
	if n := calls.Load(); n >= int64(st.Live) {
		t.Errorf("scan made %d calls after error (of %d records); stop flag not honored", n, st.Live)
	}
}

// TestScanReadaheadIOInvariant checks the accounting invariant the figures
// depend on: with readahead on, a cold full scan issues exactly as many
// store reads as with readahead off — misses are merely reclassified as
// prefetches.
func TestScanReadaheadIOInvariant(t *testing.T) {
	f := newFile(t, 256)
	buildScanFixture(t, f, 800)
	pool := f.pool
	count := func(ra int) (reads int64, st buffer.PoolStats) {
		pool.SetReadahead(ra)
		defer pool.SetReadahead(0)
		if err := pool.FlushAll(); err != nil {
			t.Fatal(err)
		}
		if err := pool.Reset(); err != nil {
			t.Fatal(err)
		}
		pool.ResetStats()
		pool.Store().Stats().Reset()
		if err := f.Scan(func(pagefile.OID, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return pool.Store().Stats().Reads(), pool.Stats()
	}
	plainReads, plainStats := count(0)
	raReads, raStats := count(6)
	if plainStats.Prefetched != 0 {
		t.Errorf("readahead-off scan prefetched %d pages", plainStats.Prefetched)
	}
	if raReads != plainReads {
		t.Errorf("store reads with readahead = %d, without = %d; total I/O must be unchanged", raReads, plainReads)
	}
	if raStats.Prefetched == 0 {
		t.Error("readahead scan recorded no prefetched pages")
	}
	if got := raStats.Misses + raStats.Prefetched; got != plainReads {
		t.Errorf("misses %d + prefetched %d = %d, want %d store reads",
			raStats.Misses, raStats.Prefetched, got, plainReads)
	}
}

// slowStore delays reads to emulate device latency, so the benchmark's
// worker speedup reflects overlapped I/O rather than CPU parallelism.
type slowStore struct {
	pagefile.Store
	latency time.Duration
}

func (s *slowStore) ReadPage(pid pagefile.PageID, buf *pagefile.Page) error {
	time.Sleep(s.latency)
	return s.Store.ReadPage(pid, buf)
}

func (s *slowStore) ReadPages(fid pagefile.FileID, start uint32, bufs []pagefile.Page) error {
	time.Sleep(s.latency)
	return s.Store.ReadPages(fid, start, bufs)
}

// BenchmarkScanThroughput measures full-scan pages/s across pool shard and
// scan worker counts on a latency-bearing memory store. The pool is smaller
// than the file so every scan is cold; workers>1 on a sharded pool overlap
// their miss reads. Run with -bench ScanThroughput; pages/s is reported as
// a custom metric.
func BenchmarkScanThroughput(b *testing.B) {
	mem := pagefile.NewMemStore()
	b.Cleanup(func() { mem.Close() })
	build := buffer.New(mem, 256)
	f, err := Create(build, "bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 120)
	for i := 0; i < 40000; i++ {
		if _, err := f.Insert(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := build.FlushAll(); err != nil {
		b.Fatal(err)
	}
	npages, err := f.NumPages()
	if err != nil {
		b.Fatal(err)
	}
	store := &slowStore{Store: mem, latency: 20 * time.Microsecond}

	for _, cfg := range []struct{ shards, workers int }{
		{1, 1}, {8, 1}, {8, 4},
	} {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", cfg.shards, cfg.workers), func(b *testing.B) {
			pool := buffer.NewSharded(store, 256, cfg.shards)
			bf, err := Open(pool, f.ID())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				var seen atomic.Int64
				if err := bf.ScanParallel(cfg.workers, func(pagefile.OID, []byte) error {
					seen.Add(1)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(npages)*float64(b.N)/elapsed.Seconds(), "pages/s")
		})
	}
}
