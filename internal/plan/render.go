package plan

import (
	"fmt"
	"strings"
)

// Render returns the human-readable plan text: the chosen operator pipeline
// followed by every costed candidate with its selection or rejection reason.
func (d *Decision) Render() string {
	return d.render(-1)
}

// RenderObserved renders the plan with the observed page count from the
// executed operation's trace paired against the prediction.
func (d *Decision) RenderObserved(observed int64) string {
	return d.render(observed)
}

func (d *Decision) render(observed int64) string {
	if d == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s on %s", d.AccessStr, d.Set)
	if d.Index != "" {
		fmt.Fprintf(&b, " via %s (%s)", d.Index, clusteredStr(d.Clustered))
	}
	if d.Parallel {
		b.WriteString(" [parallel]")
	}
	fmt.Fprintf(&b, "  est_rows=%s", num(d.EstRows))
	if observed >= 0 {
		fmt.Fprintf(&b, "  predicted=%s pages observed=%d pages", num(d.PredictedPages), observed)
	} else {
		fmt.Fprintf(&b, "  predicted=%s pages", num(d.PredictedPages))
	}
	b.WriteByte('\n')
	for _, op := range d.Operators {
		fmt.Fprintf(&b, "  -> %s", op.Name)
		if op.Detail != "" {
			fmt.Fprintf(&b, " [%s]", op.Detail)
		}
		fmt.Fprintf(&b, "  (%s pages)\n", num(op.Pages))
	}
	b.WriteString("candidates:\n")
	for _, c := range d.Candidates {
		mark := " "
		if c.Chosen {
			mark = "*"
		}
		name := c.Access.String()
		if c.Index != "" {
			name += "(" + c.Index + ")"
		}
		fmt.Fprintf(&b, "  %s %-28s %8s pages  %s\n", mark, name, num(c.Pages), c.Reason)
	}
	return strings.TrimRight(b.String(), "\n")
}

// num formats a page count compactly: integers without a decimal point,
// fractional predictions with one digit.
func num(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

func fmtPages(format string, args ...float64) string {
	out := make([]interface{}, len(args))
	for i, a := range args {
		out[i] = num(a)
	}
	return fmt.Sprintf(strings.ReplaceAll(format, "%s", "%v"), out...)
}

func fmtLevels(n int) string {
	if n == 1 {
		return "1 level, memoized"
	}
	return fmt.Sprintf("%d levels, memoized", n)
}
