package plan

import (
	"strings"
	"testing"
)

func baseInput() Input {
	return Input{
		Source: SetStats{Set: "Emp", Pages: 200, Card: 20000, PerPage: 100, Exact: true},
		Where:  &PredInfo{Expr: "salary", Op: "between", Detail: "salary between a and b", Selectivity: 0.25},
		Index:  &IndexInfo{Name: "bysal", Expr: "salary", Height: 2, LeafPages: 100, Entries: 20000},
	}
}

// A wide unclustered range over a large set must fall back to the scan: the
// Yao fetch alone approaches the whole file, and the scan reads it exactly
// once.
func TestWideUnclusteredRangePicksScan(t *testing.T) {
	d := Choose(baseInput())
	if d.Access != SeqScan {
		t.Fatalf("access = %v, want seq-scan\n%s", d.Access, d.Render())
	}
	if len(d.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2 (scan + rejected index)", len(d.Candidates))
	}
	var rejected *Candidate
	for i := range d.Candidates {
		if !d.Candidates[i].Chosen {
			rejected = &d.Candidates[i]
		}
	}
	if rejected == nil || rejected.Access != IndexRange {
		t.Fatalf("expected a rejected index candidate, got %+v", d.Candidates)
	}
	if !strings.Contains(rejected.Reason, "rejected") {
		t.Fatalf("rejected candidate reason = %q", rejected.Reason)
	}
	if d.Label() != "scan" {
		t.Fatalf("label = %q, want scan", d.Label())
	}
}

// The same wide range through a clustered index touches only the qualifying
// quarter of the file and wins.
func TestClusteringFlipsToIndex(t *testing.T) {
	in := baseInput()
	in.Index.Clustered = true
	d := Choose(in)
	if d.Access != IndexRange {
		t.Fatalf("access = %v, want index-range\n%s", d.Access, d.Render())
	}
	if d.Label() != "index:bysal" {
		t.Fatalf("label = %q", d.Label())
	}
}

// Dropping the index removes the candidate entirely.
func TestNoIndexLeavesOnlyScan(t *testing.T) {
	in := baseInput()
	in.Index = nil
	d := Choose(in)
	if d.Access != SeqScan || len(d.Candidates) != 1 {
		t.Fatalf("access = %v candidates = %d, want lone seq-scan", d.Access, len(d.Candidates))
	}
	if d.Candidates[0].Reason != "only access path" {
		t.Fatalf("reason = %q", d.Candidates[0].Reason)
	}
}

// A selective point probe picks the index even unclustered.
func TestPointProbePicksIndex(t *testing.T) {
	in := baseInput()
	in.Where = &PredInfo{Expr: "salary", Op: "=", Detail: "salary = x", Selectivity: 1.0 / 20000}
	d := Choose(in)
	if d.Access != IndexRange {
		t.Fatalf("access = %v, want index-range\n%s", d.Access, d.Render())
	}
}

// Skewing cardinality down flips the wide range back to the index: on a
// small set the index costs a handful of pages and sits inside the margin.
func TestCardinalitySkewFlipsAccessPath(t *testing.T) {
	in := baseInput()
	big := Choose(in)
	in.Source = SetStats{Set: "Emp", Pages: 2, Card: 50, PerPage: 25, Exact: true}
	in.Index.Height = 1
	in.Index.LeafPages = 1
	in.Index.Entries = 50
	small := Choose(in)
	if big.Access != SeqScan || small.Access != IndexRange {
		t.Fatalf("big = %v small = %v, want scan then index", big.Access, small.Access)
	}
}

// ForceScan pins the scan regardless of cost and records why.
func TestForceScan(t *testing.T) {
	in := baseInput()
	in.Index.Clustered = true
	in.ForceScan = true
	d := Choose(in)
	if d.Access != SeqScan {
		t.Fatalf("access = %v, want seq-scan", d.Access)
	}
	if !strings.Contains(d.Candidates[0].Reason, "ForceScan") {
		t.Fatalf("reason = %q", d.Candidates[0].Reason)
	}
}

// Replicating the path removes its traversal cost: an in-place replicated
// path predicate costs the same as a plain field, while the unreplicated
// fused walk pays (capped) traversal pages.
func TestReplicationRemovesTraversalCost(t *testing.T) {
	in := baseInput()
	in.Index = nil
	in.Paths = []PathExpr{{Expr: "dept.org.name", Kind: PathFused, Levels: 2, LevelPages: 30, Filter: true}}
	fused := Choose(in)
	in.Paths = []PathExpr{{Expr: "dept.org.name", Kind: PathInPlace, Filter: true}}
	repl := Choose(in)
	if repl.PredictedPages >= fused.PredictedPages {
		t.Fatalf("replicated cost %.1f not below fused cost %.1f", repl.PredictedPages, fused.PredictedPages)
	}
	if fused.PredictedPages != in.Source.Pages+30 {
		t.Fatalf("fused cost = %.1f, want scan 200 + capped traversal 30", fused.PredictedPages)
	}
	if len(fused.Fused) != 1 || fused.Fused[0] != "dept.org.name" {
		t.Fatalf("fused exprs = %v", fused.Fused)
	}
	if len(repl.Fused) != 0 {
		t.Fatalf("replicated plan unexpectedly fused: %v", repl.Fused)
	}
}

// The fused traversal's memo caps its cost at the target sets' total pages;
// the unfused per-record walk does not.
func TestFusionCapsTraversalPages(t *testing.T) {
	p := PathExpr{Expr: "dept.org.name", Kind: PathFused, Levels: 2, LevelPages: 30}
	if got := pathCost(p, 10000); got != 30 {
		t.Fatalf("fused cost = %.1f, want memo cap 30", got)
	}
	p.LevelPages = 0 // unknown target size: no cap
	if got := pathCost(p, 10000); got != 20000 {
		t.Fatalf("uncapped cost = %.1f, want 20000", got)
	}
}

// Workers > 1 yields the scan-parallel trace label but identical page cost.
func TestParallelScanLabel(t *testing.T) {
	in := baseInput()
	in.Index = nil
	serial := Choose(in)
	in.Workers = 4
	par := Choose(in)
	if par.Label() != "scan-parallel" || serial.Label() != "scan" {
		t.Fatalf("labels = %q / %q", serial.Label(), par.Label())
	}
	if par.PredictedPages != serial.PredictedPages {
		t.Fatalf("parallel cost %.1f != serial %.1f", par.PredictedPages, serial.PredictedPages)
	}
}

// Render output names the operators, both candidates, and the prediction;
// RenderObserved appends the observed count.
func TestRender(t *testing.T) {
	in := baseInput()
	in.Index.Clustered = true
	in.Paths = []PathExpr{{Expr: "dept.name", Kind: PathFused, Levels: 1, LevelPages: 5}}
	d := Choose(in)
	txt := d.RenderObserved(57)
	for _, want := range []string{
		"index-range(bysal)", "fetch(Emp)", "fused-join(dept.name)",
		"candidates:", "seq-scan", "observed=57 pages", "predicted=",
	} {
		if !strings.Contains(txt, want) {
			t.Fatalf("render missing %q:\n%s", want, txt)
		}
	}
	if strings.Contains(d.Render(), "observed=") {
		t.Fatalf("Render without observation mentions observed:\n%s", d.Render())
	}
}

// Tiny sets stay on the index: the margin tie-break keeps point/range
// queries on freshly built indexes even when the whole set fits in a page.
func TestTinySetStaysOnIndex(t *testing.T) {
	in := Input{
		Source: SetStats{Set: "S", Pages: 1, Card: 3, PerPage: 3, Exact: true},
		Where:  &PredInfo{Expr: "sal", Op: "between", Detail: "sal between a and b", Selectivity: 0.25},
		Index:  &IndexInfo{Name: "sal", Expr: "sal", Height: 1, LeafPages: 1, Entries: 3},
	}
	d := Choose(in)
	if d.Access != IndexRange {
		t.Fatalf("access = %v, want index-range\n%s", d.Access, d.Render())
	}
}
