// Package plan implements the cost-based query planner: given a query's
// predicate shape and the catalog's physical statistics, it costs every
// viable access path in predicted page I/O — B+tree index range, sequential
// heap scan, replicated-field fast path, fused functional join — and emits
// an executable Decision the engine drives execution from and the Explain
// API renders.
//
// Costing reuses the Section-6 machinery of internal/costmodel (Yao's
// function for unclustered fetches, ceil page counts for clustered ones)
// but runs it over measured statistics — heap page counts from the store,
// exact cardinalities from B+tree metadata when a set has any index —
// instead of the paper's synthetic parameters.
package plan

import (
	"github.com/exodb/fieldrepl/internal/costmodel"
)

// Access enumerates the physical access paths the planner chooses between.
type Access int

// The access paths.
const (
	// SeqScan reads the set's heap file front to back, evaluating the
	// predicate over whole pinned pages.
	SeqScan Access = iota
	// IndexRange descends a B+tree to the predicate's key range and fetches
	// the qualifying objects, leaf pages batched through readahead.
	IndexRange
)

func (a Access) String() string {
	if a == IndexRange {
		return "index-range"
	}
	return "seq-scan"
}

// IndexMargin is the planner's index-preference tie-break, in pages: the
// index path is chosen unless a sequential scan is cheaper by more than this
// margin. Honest page counts would pick the scan on any set small enough to
// fit in a page or two, where the index costs the same handful of I/Os but
// returns sorted, early-terminating results — the margin encodes that an
// index within a few pages of the scan is never the wrong choice, while a
// decisively cheaper scan (wide range over a large unclustered set) still
// wins.
const IndexMargin = 8.0

// SetStats are the measured physical statistics of one set's heap file.
type SetStats struct {
	Set     string  // set name
	Pages   float64 // heap file page count (store metadata, exact)
	Card    float64 // record count: exact from B+tree metadata, else estimated
	PerPage float64 // records per page, consistent with Pages and Card
	Exact   bool    // Card came from index metadata rather than a size estimate
}

// IndexInfo describes a candidate B+tree over the predicate expression.
type IndexInfo struct {
	Name      string
	Expr      string // indexed field or dotted path
	Clustered bool
	Height    float64 // tree height (1 = root is a leaf), from metadata
	LeafPages float64 // estimated leaf page count
	Entries   float64 // entry count, from metadata
}

// PredInfo summarizes the qualifying predicate for costing and rendering.
type PredInfo struct {
	Expr        string
	Op          string  // "=", "<", "<=", ">", ">=", "between"
	Detail      string  // rendered "salary between 60000 and 64000"
	Selectivity float64 // estimated fraction of the set qualifying
}

// PathKind classifies how one dotted path expression will be resolved.
type PathKind int

// The resolution strategies, cheapest first.
const (
	// PathPlain is a plain field: no traversal.
	PathPlain PathKind = iota
	// PathInPlace reads the value from in-place replicated storage inside
	// the source object — zero extra I/O.
	PathInPlace
	// PathSeparate fetches the value from a separate-replication S′ object:
	// one extra object read per evaluated record.
	PathSeparate
	// PathFused walks the reference chain as a fused functional join: the
	// whole multi-level traversal runs as one pass with decoded intermediate
	// and terminal objects memoized per query, so repeatedly referenced
	// targets are read and decoded once instead of once per source record.
	PathFused
)

func (k PathKind) String() string {
	switch k {
	case PathInPlace:
		return "repl-inplace"
	case PathSeparate:
		return "repl-separate"
	case PathFused:
		return "fused-join"
	default:
		return "field"
	}
}

// PathExpr is one dotted path expression appearing in the query, with the
// resolution strategy the catalog supports for it.
type PathExpr struct {
	Expr   string
	Kind   PathKind
	Levels int // functional-join levels actually walked (0 for replicated)
	// LevelPages is the total heap page count of the traversed target sets,
	// when resolvable — the ceiling a fused (memoized) traversal cannot
	// exceed no matter how many source records evaluate it. 0 = unknown.
	LevelPages float64
	// Filter marks a path evaluated as part of Where/Filters (paid for every
	// scanned record) rather than only for matching rows.
	Filter bool
	// Covered marks the Where path an index on the same expression resolves
	// through its keys, skipping the traversal entirely on the index path.
	Covered bool
}

// Input is everything the planner needs to cost a query.
type Input struct {
	Source SetStats
	Where  *PredInfo
	// Index is the catalog's index over the Where expression, nil when none
	// exists (Filters never drive index selection).
	Index *IndexInfo
	// Paths are the dotted path expressions among Where, Filters, and the
	// projection.
	Paths []PathExpr
	// ForceScan pins the decision to SeqScan (baseline measurements).
	ForceScan bool
	// Workers is the configured parallel-scan fan-out (affects the plan
	// label, not the page cost — the same pages are read either way).
	Workers int
	// EmitPages is the predicted output-file page count when the query emits
	// one, 0 otherwise.
	EmitPages float64
}

// Candidate is one costed access path, kept (with the rejection reason) for
// Explain output.
type Candidate struct {
	Access    Access  `json:"access"`
	Index     string  `json:"index,omitempty"`
	Clustered bool    `json:"clustered,omitempty"`
	Pages     float64 `json:"pages"`
	Chosen    bool    `json:"chosen"`
	Reason    string  `json:"reason"`
}

// Operator is one step of the chosen plan, for rendering.
type Operator struct {
	Name   string  `json:"name"`
	Detail string  `json:"detail,omitempty"`
	Pages  float64 `json:"pages"`
}

// Decision is the planner's output: the chosen access path, every costed
// alternative, and the operator pipeline execution follows.
type Decision struct {
	Set       string `json:"set"`
	Access    Access `json:"-"`
	AccessStr string `json:"access"`
	// Index names the chosen index ("" for a scan); Clustered its clustering.
	Index     string `json:"index,omitempty"`
	Clustered bool   `json:"clustered,omitempty"`
	// Parallel marks a scan fanned out across workers.
	Parallel bool `json:"parallel,omitempty"`
	// Fused lists the path expressions resolved by fused traversal.
	Fused      []string    `json:"fused,omitempty"`
	Candidates []Candidate `json:"candidates"`
	Operators  []Operator  `json:"operators"`
	// PredictedPages is the chosen candidate's page cost.
	PredictedPages float64 `json:"predicted_pages"`
	// EstRows is the predicted qualifying-row count.
	EstRows float64 `json:"est_rows"`
}

// Label returns the trace plan label the engine stamps on the operation:
// "scan", "scan-parallel", or "index:<name>".
func (d *Decision) Label() string {
	if d == nil {
		return ""
	}
	if d.Access == IndexRange {
		return "index:" + d.Index
	}
	if d.Parallel {
		return "scan-parallel"
	}
	return "scan"
}

// pathCost predicts the page I/O of resolving one path expression for
// records evaluations.
func pathCost(p PathExpr, records float64) float64 {
	var perRecord float64
	switch p.Kind {
	case PathPlain, PathInPlace:
		return 0
	case PathSeparate:
		perRecord = 1
	default:
		perRecord = float64(p.Levels)
	}
	c := perRecord * records
	if p.Kind == PathFused && p.LevelPages > 0 && c > p.LevelPages {
		// The fused traversal memoizes decoded targets: however many source
		// records resolve through it, each target page is fetched at most
		// once per query.
		c = p.LevelPages
	}
	return c
}

// Choose costs every viable access path for in and returns the decision.
func Choose(in Input) *Decision {
	sel := 1.0
	if in.Where != nil {
		sel = in.Where.Selectivity
		if sel <= 0 {
			sel = 1
		}
		if sel > 1 {
			sel = 1
		}
	}
	estRows := sel * in.Source.Card
	if in.Where != nil && estRows < 1 {
		estRows = 1
	}

	// Sequential scan: every heap page once, path predicates evaluated for
	// every record, projection paths only for matches.
	scanPages := in.Source.Pages
	for _, p := range in.Paths {
		if p.Filter {
			scanPages += pathCost(p, in.Source.Card)
		} else {
			scanPages += pathCost(p, estRows)
		}
	}
	scanPages += in.EmitPages
	cands := []Candidate{{Access: SeqScan, Pages: scanPages}}

	// Index range: descend, walk the qualifying leaf span, fetch the
	// qualifying objects (Yao for unclustered, ceil of the page fraction for
	// clustered), then resolve paths for matches only. An index over the
	// Where path itself skips that traversal entirely.
	if in.Index != nil && in.Where != nil {
		ix := in.Index
		ixPages := costmodel.IndexProbePages(ix.Height, ix.LeafPages, sel) + fetchPages(in, sel, estRows)
		for _, p := range in.Paths {
			if p.Covered {
				continue
			}
			ixPages += pathCost(p, estRows)
		}
		ixPages += in.EmitPages
		cands = append(cands, Candidate{
			Access: IndexRange, Index: ix.Name, Clustered: ix.Clustered, Pages: ixPages,
		})
	}

	choice := pick(cands, in.ForceScan)
	chosen := &cands[choice]
	chosen.Chosen = true

	d := &Decision{
		Set:            in.Source.Set,
		Access:         chosen.Access,
		Index:          chosen.Index,
		Clustered:      chosen.Clustered,
		Parallel:       chosen.Access == SeqScan && in.Workers > 1,
		Candidates:     cands,
		PredictedPages: chosen.Pages,
		EstRows:        estRows,
	}
	d.AccessStr = d.Access.String()
	d.Operators = operators(in, d, sel, estRows)
	for _, p := range in.Paths {
		if p.Kind == PathFused && !(p.Covered && d.Access == IndexRange) {
			d.Fused = append(d.Fused, p.Expr)
		}
	}
	return d
}

// pick selects the winning candidate index and writes the others' rejection
// reasons.
func pick(cands []Candidate, forceScan bool) int {
	if forceScan {
		cands[0].Reason = "forced: ForceScan set"
		for i := 1; i < len(cands); i++ {
			cands[i].Reason = "rejected: ForceScan set"
		}
		return 0
	}
	if len(cands) == 1 {
		cands[0].Reason = "only access path"
		return 0
	}
	scan, idx := &cands[0], &cands[1]
	if idx.Pages <= scan.Pages+IndexMargin {
		idx.Reason = fmtPages("chosen: %s pages vs scan %s (index preferred within margin)", idx.Pages, scan.Pages)
		scan.Reason = fmtPages("rejected: %s pages vs index %s", scan.Pages, idx.Pages)
		return 1
	}
	scan.Reason = fmtPages("chosen: %s pages vs index %s", scan.Pages, idx.Pages)
	idx.Reason = fmtPages("rejected: %s pages vs scan %s (beyond %s-page index margin)", idx.Pages, scan.Pages, IndexMargin)
	return 0
}

// operators builds the chosen plan's operator pipeline.
func operators(in Input, d *Decision, sel, estRows float64) []Operator {
	var ops []Operator
	detail := ""
	if in.Where != nil {
		detail = in.Where.Detail
	}
	if d.Access == IndexRange {
		ops = append(ops,
			Operator{Name: "index-range(" + d.Index + ")", Detail: detail,
				Pages: costmodel.IndexProbePages(in.Index.Height, in.Index.LeafPages, sel)},
			Operator{Name: "fetch(" + in.Source.Set + ")", Detail: clusteredStr(in.Index.Clustered),
				Pages: fetchPages(in, sel, estRows)},
		)
	} else {
		name := "seq-scan(" + in.Source.Set + ")"
		if d.Parallel {
			name = "seq-scan-parallel(" + in.Source.Set + ")"
		}
		ops = append(ops, Operator{Name: name, Detail: detail, Pages: in.Source.Pages})
	}
	for _, p := range in.Paths {
		if p.Kind == PathPlain {
			continue
		}
		if p.Covered && d.Access == IndexRange {
			ops = append(ops, Operator{Name: p.Kind.String() + "(" + p.Expr + ")", Detail: "covered by index keys", Pages: 0})
			continue
		}
		records := estRows
		if p.Filter && d.Access == SeqScan {
			records = in.Source.Card
		}
		op := Operator{Name: p.Kind.String() + "(" + p.Expr + ")", Pages: pathCost(p, records)}
		switch p.Kind {
		case PathInPlace:
			op.Detail = "replicated in source object"
		case PathSeparate:
			op.Detail = "one S′ fetch per record"
		case PathFused:
			op.Detail = fmtLevels(p.Levels)
		}
		ops = append(ops, op)
	}
	if in.EmitPages > 0 {
		ops = append(ops, Operator{Name: "emit(output)", Pages: in.EmitPages})
	}
	return ops
}

func clusteredStr(c bool) string {
	if c {
		return "clustered"
	}
	return "unclustered"
}

// fetchPages predicts the heap pages read to fetch the qualifying records
// through the candidate index.
func fetchPages(in Input, sel, estRows float64) float64 {
	st := costmodel.AccessStats{Pages: in.Source.Pages, Card: in.Source.Card, PerPage: in.Source.PerPage}
	if in.Index.Clustered {
		return costmodel.ClusteredFetchPages(st, sel)
	}
	return costmodel.UnclusteredFetchPages(st, estRows)
}
