package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"github.com/exodb/fieldrepl/internal/pagefile"
)

// This file is the shipping side of the log: a tail reader that streams the
// durable record prefix to replication followers, the raw-append path a
// follower uses to persist received frames into its own log, and the
// retain interlock that keeps Checkpoint from truncating records a connected
// follower still needs.

// ErrTruncated is returned by ReadTail when the records after the cursor's
// LSN have been truncated away by a checkpoint: the consumer can no longer
// catch up from the log and must full-resync from a snapshot.
var ErrTruncated = errors.New("wal: records truncated away")

// ErrBadFrame is returned when framed record bytes fail validation (short
// frame, implausible length, or CRC mismatch).
var ErrBadFrame = errors.New("wal: bad frame")

// Record is one decoded framed record.
type Record struct {
	Type    byte
	LSN     uint64
	Payload []byte // aliases the input buffer of ParseFrame
}

// ParseFrame decodes the first framed record in buf, returning the record
// and the number of bytes the frame occupies. The returned payload aliases
// buf. It fails with ErrBadFrame on a short, oversized, or CRC-corrupt
// frame — a follower treats that as a torn stream and reconnects.
func ParseFrame(buf []byte) (Record, int, error) {
	if len(buf) < 8 {
		return Record{}, 0, fmt.Errorf("%w: short header (%d bytes)", ErrBadFrame, len(buf))
	}
	bodyLen := binary.LittleEndian.Uint32(buf[0:])
	crc := binary.LittleEndian.Uint32(buf[4:])
	if bodyLen < 9 || bodyLen > maxBodyLen {
		return Record{}, 0, fmt.Errorf("%w: implausible body length %d", ErrBadFrame, bodyLen)
	}
	if len(buf) < 8+int(bodyLen) {
		return Record{}, 0, fmt.Errorf("%w: truncated body (%d of %d bytes)", ErrBadFrame, len(buf)-8, bodyLen)
	}
	body := buf[8 : 8+bodyLen]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	return Record{Type: body[0], LSN: binary.LittleEndian.Uint64(body[1:]), Payload: body[9:]}, 8 + int(bodyLen), nil
}

// DecodePage decodes a RecPage payload into a PageImage (lsn is the record's
// LSN, which the logged image is stamped with).
func DecodePage(lsn uint64, payload []byte) (PageImage, error) {
	if len(payload) != 8+pagefile.PageSize {
		return PageImage{}, fmt.Errorf("%w: page payload of %d bytes", ErrBadFrame, len(payload))
	}
	img := PageImage{
		PID: pagefile.PageID{
			File: pagefile.FileID(binary.LittleEndian.Uint32(payload)),
			Page: binary.LittleEndian.Uint32(payload[4:]),
		},
		LSN: lsn,
	}
	copy(img.Data[:], payload[8:])
	return img, nil
}

// DecodeFileCreate decodes a RecFileCreate payload.
func DecodeFileCreate(payload []byte) (FileCreate, error) {
	if len(payload) < 4 {
		return FileCreate{}, fmt.Errorf("%w: fileCreate payload of %d bytes", ErrBadFrame, len(payload))
	}
	return FileCreate{
		FID:  pagefile.FileID(binary.LittleEndian.Uint32(payload)),
		Name: string(payload[4:]),
	}, nil
}

// Cursor is a tail reader's position: the last LSN already consumed plus the
// file offset and log generation it was read at. The zero offset/epoch state
// produced by CursorAt forces ReadTail to revalidate against the current log
// before reading.
type Cursor struct {
	LSN   uint64
	off   int64
	epoch uint64
	valid bool
}

// CursorAt returns a cursor that resumes reading after lsn.
func (m *Manager) CursorAt(lsn uint64) Cursor { return Cursor{LSN: lsn} }

// ReadTail reads durable framed records after c.LSN, up to roughly maxBytes,
// advancing the cursor. An empty result means the consumer is caught up with
// the durable prefix. It fails with ErrTruncated when a checkpoint has
// truncated records the cursor still needs — the consumer must resync.
//
// The file is read outside the manager lock (concurrent appends use
// positional writes past the durable boundary, so the bytes below it are
// stable); a truncation that races the read is detected by re-checking the
// log generation before returning, so a reader can never hand out frames
// from a mixed generation.
func (m *Manager) ReadTail(c *Cursor, maxBytes int) ([]byte, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	base, epoch, durOff := m.base, m.epoch, m.durableOff
	f := m.f
	m.mu.Unlock()

	if !c.valid || c.epoch != epoch {
		// First read, or the log was truncated/reset since the last one:
		// offsets are meaningless, so rescan from the header. Records below
		// the current base are gone for good.
		if c.LSN+1 < base {
			return nil, fmt.Errorf("%w: need LSN %d, log starts at %d", ErrTruncated, c.LSN+1, base)
		}
		c.off, c.epoch, c.valid = headerSize, epoch, true
	}

	var out []byte
	off, lsn := c.off, c.LSN
	var frame [8]byte
	for off < durOff && len(out) < maxBytes {
		if _, err := f.ReadAt(frame[:], off); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // racing truncation; the epoch re-check below rejects it
			}
			return nil, fmt.Errorf("wal: tail read: %w", err)
		}
		bodyLen := binary.LittleEndian.Uint32(frame[0:])
		if bodyLen < 9 || bodyLen > maxBodyLen || off+8+int64(bodyLen) > durOff {
			break // torn tail or racing truncation
		}
		buf := make([]byte, 8+bodyLen)
		copy(buf, frame[:])
		if _, err := f.ReadAt(buf[8:], off+8); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return nil, fmt.Errorf("wal: tail read: %w", err)
		}
		recLSN := binary.LittleEndian.Uint64(buf[9:])
		if recLSN > lsn {
			out = append(out, buf...)
			lsn = recLSN
		}
		off += 8 + int64(bodyLen)
	}

	// Reject the read if the log generation changed underneath it: the bytes
	// may mix records from before and after a truncation.
	m.mu.Lock()
	stale := m.epoch != epoch
	m.mu.Unlock()
	if stale {
		c.valid = false
		return nil, nil
	}
	c.off, c.LSN = off, lsn
	return out, nil
}

// WaitDurableAbove blocks until the durable LSN exceeds after, the timeout
// elapses, or the log closes, returning the current durable LSN. Shipping
// loops use it to sleep between batches without polling.
func (m *Manager) WaitDurableAbove(after uint64, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	for {
		if d := m.durable.Load(); d > after {
			return d
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return m.durable.Load()
		}
		ch := m.notify
		m.mu.Unlock()
		if d := m.durable.Load(); d > after {
			return d
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return m.durable.Load()
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return m.durable.Load()
		}
	}
}

// AppendRaw appends pre-framed records received from a primary verbatim.
// The caller (the follower applier) has already verified the framing and
// CRCs and guarantees the frames end at lastLSN and continue the local LSN
// sequence (gaps are fine — the primary skips LSNs on failed appends). A
// transaction already in the log (lastLSN at or below the appended frontier)
// is dropped as a duplicate: the primary re-sends from the follower's
// *applied* position, which trails the log when an apply failed after the
// append. The bytes are not durable until WaitDurable(lastLSN) returns.
func (m *Manager) AppendRaw(frames []byte, lastLSN uint64, nRecords, nCommits int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.broken {
		return errors.New("wal: log poisoned by an earlier failed append")
	}
	if lastLSN <= m.appended {
		return nil // duplicate of an already-appended transaction
	}
	if _, err := m.f.WriteAt(frames, m.off); err != nil {
		if terr := m.f.Truncate(m.off); terr != nil {
			m.broken = true
		}
		return fmt.Errorf("wal: raw append: %w", err)
	}
	m.off += int64(len(frames))
	m.appended = lastLSN
	m.nextLSN = lastLSN + 1
	m.records.Add(int64(nRecords))
	m.commits.Add(int64(nCommits))
	m.bytes.Add(int64(len(frames)))
	return nil
}

// ResetTo truncates the log and restarts the LSN sequence at next. A
// follower calls it after installing a snapshot taken at LSN next-1: the
// store now embodies everything up to the snapshot, and the log will hold
// only records streamed after it.
func (m *Manager) ResetTo(next uint64) error {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if err := m.writeHeader(next); err != nil {
		return err
	}
	m.off = headerSize
	m.pageLSN = make(map[pagefile.PageID]uint64)
	m.nextLSN = next
	m.appended = next - 1
	m.durable.Store(m.appended)
	m.broken = false
	return nil
}

// SetRetain registers the truncation interlock: f reports the minimum LSN a
// log consumer still needs (ok=false when there is no consumer), and
// maxBytes bounds how large the log may grow on a lagging consumer's behalf
// before Checkpoint truncates anyway (0 = unbounded). Pass a nil f to
// unregister.
func (m *Manager) SetRetain(f func() (uint64, bool), maxBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retain = f
	m.retainBytes = maxBytes
}

// BaseLSN returns the current header base LSN: the first LSN the log can
// still serve. Records below it have been truncated by checkpoints.
func (m *Manager) BaseLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base
}

// LastLSN returns the highest LSN handed to the OS (appended, not
// necessarily durable).
func (m *Manager) LastLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appended
}

// DurableLSN returns the highest LSN known fsync'd.
func (m *Manager) DurableLSN() uint64 { return m.durable.Load() }

// Size returns the log's current append offset in bytes (header included).
func (m *Manager) Size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.off
}
