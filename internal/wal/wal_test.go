package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/exodb/fieldrepl/internal/pagefile"
)

func openT(t *testing.T, path string, store pagefile.Store, interval time.Duration) (*Manager, *RecoveryReport) {
	t.Helper()
	m, rep, err := Open(path, store, interval)
	if err != nil {
		t.Fatal(err)
	}
	return m, rep
}

// fill returns a page image with a recognizable pattern.
func fill(b byte) pagefile.Page {
	var p pagefile.Page
	for i := range p {
		p[i] = b
	}
	return p
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()
	fid, err := store.CreateFile("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Allocate(fid); err != nil {
		t.Fatal(err)
	}
	pid := pagefile.PageID{File: fid, Page: 0}

	m, rep := openT(t, path, store, 0)
	if rep.Commits != 0 {
		t.Fatalf("fresh log replayed %d commits", rep.Commits)
	}
	img := fill(0xAB)
	lsn, n, err := m.AppendCommit(nil, []PageImage{{PID: pid, Data: img}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("AppendCommit reported %d bytes", n)
	}
	if err := m.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// Crash: the page never reached the store; the manager is simply dropped.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rep2 := openT(t, path, store, 0)
	defer m2.Close()
	if rep2.Commits != 1 || rep2.PagesApplied != 1 {
		t.Fatalf("replay: commits=%d applied=%d, want 1/1", rep2.Commits, rep2.PagesApplied)
	}
	var got pagefile.Page
	if err := store.ReadPage(pid, &got); err != nil {
		t.Fatal(err)
	}
	// The logged image carries the record's LSN; everything else must match.
	want := img
	pagefile.SetPageLSN(&want, pagefile.PageLSN(&got))
	if got != want {
		t.Fatal("replayed page does not match the logged image")
	}
	if pagefile.PageLSN(&got) == 0 {
		t.Fatal("replayed page carries no LSN")
	}
}

func TestReplaySkipsNewerDiskPage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	store.Allocate(fid)
	pid := pagefile.PageID{File: fid, Page: 0}

	m, _ := openT(t, path, store, 0)
	if _, _, err := m.AppendCommit(nil, []PageImage{{PID: pid, Data: fill(1)}}, nil); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// The disk page carries an LSN ahead of the log record (a later flush of
	// newer, checkpointed state). Replay must not regress it.
	newer := fill(9)
	pagefile.SetPageLSN(&newer, 1<<40)
	if err := store.WritePage(pid, &newer); err != nil {
		t.Fatal(err)
	}
	m2, rep := openT(t, path, store, 0)
	defer m2.Close()
	if rep.PagesApplied != 0 || rep.PagesSkipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 0/1", rep.PagesApplied, rep.PagesSkipped)
	}
	var got pagefile.Page
	store.ReadPage(pid, &got)
	if got != newer {
		t.Fatal("replay overwrote a newer disk page")
	}
}

func TestReplayRecreatesFileAndPages(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")

	m, _ := openT(t, path, store, 0)
	img := fill(0x5C)
	// Pages 0..2 of a file created inside the transaction; the store never
	// saw the create (crash before any write-back).
	files := []FileCreate{{FID: fid + 1, Name: "created-in-txn"}}
	pages := []PageImage{
		{PID: pagefile.PageID{File: fid + 1, Page: 0}, Data: img},
		{PID: pagefile.PageID{File: fid + 1, Page: 2}, Data: img},
	}
	if _, _, err := m.AppendCommit(files, pages, nil); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, rep := openT(t, path, store, 0)
	defer m2.Close()
	if rep.FilesCreated != 1 || rep.PagesApplied != 2 {
		t.Fatalf("filesCreated=%d applied=%d, want 1/2", rep.FilesCreated, rep.PagesApplied)
	}
	n, err := store.NumPages(fid + 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("recreated file has %d pages, want 3 (grown to cover page 2)", n)
	}
}

// TestReplayFillsFileIDGaps reproduces a replica's restart recovery over a
// log whose FileCreate references an ID beyond the store's next one: the
// primary consumed the intermediate IDs with unlogged scratch files this
// store never materialized. Replay must burn the gap with placeholders so
// the logged create lands on the logged ID — the same sequence live
// follower apply produces — instead of failing deterministically and
// leaving the directory unopenable.
func TestReplayFillsFileIDGaps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()
	if _, err := store.CreateFile("base"); err != nil { // FID 1
		t.Fatal(err)
	}

	m, _ := openT(t, path, store, 0)
	// FIDs 2 and 3 belonged to scratch query outputs on the primary: never
	// logged, never shipped. FID 4 is a real logged create whose pages the
	// crash caught before any store apply.
	files := []FileCreate{{FID: 4, Name: "late"}}
	pages := []PageImage{{PID: pagefile.PageID{File: 4, Page: 0}, Data: fill(0x7D)}}
	lsn, _, err := m.AppendCommit(files, pages, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rep := openT(t, path, store, 0)
	defer m2.Close()
	if rep.FilesCreated != 3 {
		t.Fatalf("replay created %d files, want 3 (2 gap placeholders + 1 logged)", rep.FilesCreated)
	}
	for fid := pagefile.FileID(2); fid <= 3; fid++ {
		name, err := store.FileName(fid)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("__repl_gap_%d", fid); name != want {
			t.Fatalf("FID %d is %q, want %q", fid, name, want)
		}
	}
	if name, err := store.FileName(4); err != nil || name != "late" {
		t.Fatalf("FID 4 is %q (%v), want %q", name, err, "late")
	}
	if rep.PagesApplied != 1 {
		t.Fatalf("replay applied %d pages, want 1", rep.PagesApplied)
	}
}

func TestReplayIgnoresTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	store.Allocate(fid)
	store.Allocate(fid)
	p0 := pagefile.PageID{File: fid, Page: 0}
	p1 := pagefile.PageID{File: fid, Page: 1}

	m, _ := openT(t, path, store, 0)
	if _, _, err := m.AppendCommit(nil, []PageImage{{PID: p0, Data: fill(1)}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AppendCommit(nil, []PageImage{{PID: p1, Data: fill(2)}}, nil); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Tear the second transaction: chop bytes off the end of the file, as a
	// crash mid-append would.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-100); err != nil {
		t.Fatal(err)
	}

	m2, rep := openT(t, path, store, 0)
	if rep.Commits != 1 || rep.PagesApplied != 1 {
		t.Fatalf("commits=%d applied=%d, want 1/1 (second txn torn)", rep.Commits, rep.PagesApplied)
	}
	if !rep.TornTail {
		t.Fatal("torn tail not reported")
	}
	var got pagefile.Page
	store.ReadPage(p1, &got)
	if got == fill(2) {
		t.Fatal("torn (uncommitted) transaction was applied")
	}
	// The torn tail is dead bytes: new appends overwrite it and must be
	// recoverable in turn.
	if _, _, err := m2.AppendCommit(nil, []PageImage{{PID: p1, Data: fill(3)}}, nil); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, rep3 := openT(t, path, store, 0)
	defer m3.Close()
	if rep3.TornTail {
		t.Fatal("tail still torn after overwrite")
	}
	store.ReadPage(p1, &got)
	want := fill(3)
	pagefile.SetPageLSN(&want, pagefile.PageLSN(&got))
	if got != want {
		t.Fatal("append after torn tail did not replay")
	}
}

func TestCatalogRecordRecovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()

	m, _ := openT(t, path, store, 0)
	if _, _, err := m.AppendCommit(nil, nil, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AppendCommit(nil, nil, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, rep := openT(t, path, store, 0)
	defer m2.Close()
	if string(rep.Catalog) != `{"v":2}` {
		t.Fatalf("recovered catalog %q, want the last committed one", rep.Catalog)
	}
}

func TestCheckpointTruncatesAndKeepsLSNsMonotone(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	store.Allocate(fid)
	pid := pagefile.PageID{File: fid, Page: 0}

	m, _ := openT(t, path, store, 0)
	lsn1, _, err := m.AppendCommit(nil, []PageImage{{PID: pid, Data: fill(1)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	if st.Size() != headerSize {
		t.Fatalf("log is %d bytes after checkpoint, want bare header (%d)", st.Size(), headerSize)
	}
	lsn2, _, err := m.AppendCommit(nil, []PageImage{{PID: pid, Data: fill(2)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn2 <= lsn1 {
		t.Fatalf("LSN regressed across checkpoint: %d then %d", lsn1, lsn2)
	}
	m.Close()

	// Only the post-checkpoint transaction replays.
	m2, rep := openT(t, path, store, 0)
	defer m2.Close()
	if rep.Commits != 1 {
		t.Fatalf("replayed %d commits, want 1 (checkpoint truncated the first)", rep.Commits)
	}
}

func TestReplayAfterCheckpointedReopen(t *testing.T) {
	// A clean open-checkpoint-close cycle leaves nothing to replay.
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()

	m, _ := openT(t, path, store, 0)
	if _, _, err := m.AppendCommit(nil, nil, []byte("cat")); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m2, rep := openT(t, path, store, 0)
	defer m2.Close()
	if rep.Commits != 0 || rep.Catalog != nil {
		t.Fatalf("clean reopen replayed commits=%d catalog=%q", rep.Commits, rep.Catalog)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	pid := func(i int) pagefile.PageID {
		store.Allocate(fid)
		return pagefile.PageID{File: fid, Page: uint32(i)}
	}

	m, _ := openT(t, path, store, 2*time.Millisecond)
	defer m.Close()
	base := m.Stats().Fsyncs

	const K = 32
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		p := pid(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, _, err := m.AppendCommit(nil, []PageImage{{PID: p, Data: fill(byte(i))}}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if err := m.WaitDurable(lsn); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	st := m.Stats()
	fsyncs := st.Fsyncs - base
	if fsyncs < 1 {
		t.Fatal("no fsync at all")
	}
	if fsyncs >= K {
		t.Fatalf("%d fsyncs for %d concurrent commits: group commit is not batching", fsyncs, K)
	}
	if st.Commits < K {
		t.Fatalf("stats report %d commits, want >= %d", st.Commits, K)
	}
}

func TestEnsureDurablePage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	store.Allocate(fid)
	pid := pagefile.PageID{File: fid, Page: 0}

	m, _ := openT(t, path, store, 0)
	defer m.Close()
	// Unlogged pages need no durability wait.
	if err := m.EnsureDurablePage(pagefile.PageID{File: fid, Page: 7}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AppendCommit(nil, []PageImage{{PID: pid, Data: fill(1)}}, nil); err != nil {
		t.Fatal(err)
	}
	before := m.Stats().Fsyncs
	if err := m.EnsureDurablePage(pid); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Fsyncs == before {
		t.Fatal("EnsureDurablePage of a logged, unsynced page did not force the log")
	}
	// Second call: already durable, no extra fsync.
	before = m.Stats().Fsyncs
	if err := m.EnsureDurablePage(pid); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Fsyncs != before {
		t.Fatal("EnsureDurablePage fsynced an already-durable page")
	}
}
