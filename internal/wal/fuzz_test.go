package wal

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"github.com/exodb/fieldrepl/internal/pagefile"
)

// frame builds one well-formed shipping frame, the seed corpus's shape.
func frame(typ byte, lsn uint64, payload []byte) []byte {
	body := make([]byte, 9+len(payload))
	body[0] = typ
	binary.LittleEndian.PutUint64(body[1:], lsn)
	copy(body[9:], payload)
	out := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(body))
	copy(out[8:], body)
	return out
}

// FuzzWALFrame throws arbitrary bytes at the frame parser and the payload
// decoders a follower runs on every received batch. The contract under fuzz:
// never panic, never accept a frame whose CRC does not match, never report a
// frame extending past the input, and decode accepted page/fileCreate
// payloads without fault.
func FuzzWALFrame(f *testing.F) {
	pagePayload := make([]byte, 8+pagefile.PageSize)
	binary.LittleEndian.PutUint32(pagePayload[0:], 3)
	binary.LittleEndian.PutUint32(pagePayload[4:], 7)
	f.Add(frame(RecPage, 42, pagePayload))
	f.Add(frame(RecCommit, 43, nil))
	f.Add(frame(RecFileCreate, 44, append([]byte{5, 0, 0, 0}, "emp"...)))
	f.Add(frame(RecCatalog, 45, []byte(`{"sets":[]}`)))
	// Damaged variants: truncated, CRC-flipped, zero-length body.
	f.Add(frame(RecCommit, 46, nil)[:9])
	bad := frame(RecCommit, 47, nil)
	bad[4] ^= 0xFF
	f.Add(bad)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := ParseFrame(data)
		if err != nil {
			return
		}
		if n < 17 || n > len(data) {
			t.Fatalf("frame size %d out of bounds for %d input bytes", n, len(data))
		}
		body := data[8:n]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[4:]) {
			t.Fatal("accepted a frame whose CRC does not match")
		}
		switch rec.Type {
		case RecPage:
			if img, err := DecodePage(rec.LSN, rec.Payload); err == nil && img.LSN != rec.LSN {
				t.Fatal("decoded page image lost its LSN")
			}
		case RecFileCreate:
			_, _ = DecodeFileCreate(rec.Payload)
		}
	})
}
