package wal

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/exodb/fieldrepl/internal/pagefile"
)

// parseAll decodes every frame in buf, failing the test on damage.
func parseAll(t *testing.T, buf []byte) []Record {
	t.Helper()
	var recs []Record
	for len(buf) > 0 {
		rec, n, err := ParseFrame(buf)
		if err != nil {
			t.Fatalf("parse frame: %v", err)
		}
		recs = append(recs, rec)
		buf = buf[n:]
	}
	return recs
}

func TestReadTailStreamsDurablePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	m, _ := openT(t, path, store, 0)
	defer m.Close()

	var lastLSN uint64
	for c := 0; c < 3; c++ {
		lsn, _, err := m.AppendCommit(nil, []PageImage{{PID: pagefile.PageID{File: fid, Page: uint32(c)}, Data: fill(byte(c + 1))}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
	}
	if err := m.WaitDurable(lastLSN); err != nil {
		t.Fatal(err)
	}

	c := m.CursorAt(0)
	buf, err := m.ReadTail(&c, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	recs := parseAll(t, buf)
	commits, prev := 0, uint64(0)
	for _, r := range recs {
		if r.LSN <= prev {
			t.Fatalf("LSNs not increasing: %d after %d", r.LSN, prev)
		}
		prev = r.LSN
		if r.Type == RecCommit {
			commits++
		}
	}
	if commits != 3 || prev != lastLSN {
		t.Fatalf("shipped %d commits ending at %d, want 3 ending at %d", commits, prev, lastLSN)
	}
	if c.LSN != lastLSN {
		t.Fatalf("cursor at %d, want %d", c.LSN, lastLSN)
	}
	// Caught up: the next read is empty, not an error.
	buf, err = m.ReadTail(&c, 1<<20)
	if err != nil || len(buf) != 0 {
		t.Fatalf("caught-up read: %d bytes, err=%v", len(buf), err)
	}
}

// ReadTail must never ship bytes that are not yet fsync'd: a follower could
// otherwise hold records the primary loses in a crash.
func TestReadTailExcludesUnsyncedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	m, _ := openT(t, path, store, 0)
	defer m.Close()

	pid := pagefile.PageID{File: fid, Page: 0}
	d1, _, err := m.AppendCommit(nil, []PageImage{{PID: pid, Data: fill(1)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDurable(d1); err != nil {
		t.Fatal(err)
	}
	// Appended but never forced: below the shipping boundary.
	d2, _, err := m.AppendCommit(nil, []PageImage{{PID: pid, Data: fill(2)}}, nil)
	if err != nil {
		t.Fatal(err)
	}

	c := m.CursorAt(0)
	buf, err := m.ReadTail(&c, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range parseAll(t, buf) {
		if r.LSN > d1 {
			t.Fatalf("shipped unsynced LSN %d (durable is %d)", r.LSN, d1)
		}
	}
	if err := m.WaitDurable(d2); err != nil {
		t.Fatal(err)
	}
	buf, err = m.ReadTail(&c, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	recs := parseAll(t, buf)
	if len(recs) == 0 || recs[len(recs)-1].LSN != d2 {
		t.Fatalf("after sync the tail should ship through %d, got %d records", d2, len(recs))
	}
}

func TestReadTailTruncationForcesResync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	m, _ := openT(t, path, store, 0)
	defer m.Close()

	lsn, _, err := m.AppendCommit(nil, []PageImage{{PID: pagefile.PageID{File: fid}, Data: fill(1)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// A consumer that never saw the truncated records cannot catch up.
	stale := m.CursorAt(0)
	if _, err := m.ReadTail(&stale, 1<<20); !errors.Is(err, ErrTruncated) {
		t.Fatalf("stale cursor: err=%v, want ErrTruncated", err)
	}
	// A caught-up consumer survives the truncation (epoch revalidation) and
	// keeps streaming records appended after it.
	cur := m.CursorAt(lsn)
	if buf, err := m.ReadTail(&cur, 1<<20); err != nil || len(buf) != 0 {
		t.Fatalf("caught-up cursor across truncation: %d bytes, err=%v", len(buf), err)
	}
	lsn2, _, err := m.AppendCommit(nil, []PageImage{{PID: pagefile.PageID{File: fid}, Data: fill(2)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDurable(lsn2); err != nil {
		t.Fatal(err)
	}
	buf, err := m.ReadTail(&cur, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	recs := parseAll(t, buf)
	if len(recs) == 0 || recs[len(recs)-1].LSN != lsn2 {
		t.Fatalf("post-truncation stream should reach %d", lsn2)
	}
}

func TestRetainDefersCheckpointUntilUnregistered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	m, _ := openT(t, path, store, 0)
	defer m.Close()

	lsn, _, err := m.AppendCommit(nil, []PageImage{{PID: pagefile.PageID{File: fid}, Data: fill(1)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// A consumer still needs LSN 1: truncation must be deferred.
	m.SetRetain(func() (uint64, bool) { return 1, true }, 0)
	size := m.Size()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.CheckpointsDeferred != 1 || st.Checkpoints != 0 {
		t.Fatalf("deferred=%d truncated=%d, want 1/0", st.CheckpointsDeferred, st.Checkpoints)
	}
	if m.BaseLSN() != 1 || m.Size() != size {
		t.Fatalf("deferred checkpoint moved the log: base=%d size=%d", m.BaseLSN(), m.Size())
	}
	c := m.CursorAt(0)
	if buf, err := m.ReadTail(&c, 1<<20); err != nil || len(buf) == 0 {
		t.Fatalf("retained records must stay shippable: %d bytes, err=%v", len(buf), err)
	}

	// Consumer gone: the next checkpoint truncates.
	m.SetRetain(nil, 0)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.Size() >= size || m.BaseLSN() != lsn+1 {
		t.Fatalf("checkpoint did not truncate: base=%d size=%d", m.BaseLSN(), m.Size())
	}
}

func TestRetainBoundForcesTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	m, _ := openT(t, path, store, 0)
	defer m.Close()

	lsn, _, err := m.AppendCommit(nil, []PageImage{{PID: pagefile.PageID{File: fid}, Data: fill(1)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// The lagging consumer's allowance is 1 byte: the log is over it, so the
	// checkpoint truncates anyway and the consumer must resync.
	m.SetRetain(func() (uint64, bool) { return 1, true }, 1)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Checkpoints != 1 {
		t.Fatalf("bounded retain should truncate, checkpoints=%d", st.Checkpoints)
	}
	c := m.CursorAt(0)
	if _, err := m.ReadTail(&c, 1<<20); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err=%v, want ErrTruncated", err)
	}
}

// A follower persists shipped frames verbatim with AppendRaw; reopening its
// log must replay them into its store exactly as the primary logged them.
func TestAppendRawRoundTripsThroughReplay(t *testing.T) {
	dir := t.TempDir()
	primary := pagefile.NewMemStore()
	fid, _ := primary.CreateFile("data")
	pm, _ := openT(t, filepath.Join(dir, "primary.log"), primary, 0)
	defer pm.Close()

	var last uint64
	for c := 0; c < 2; c++ {
		files := []FileCreate(nil)
		if c == 0 {
			files = []FileCreate{{FID: fid, Name: "data"}}
		}
		lsn, _, err := pm.AppendCommit(files, []PageImage{{PID: pagefile.PageID{File: fid, Page: uint32(c)}, Data: fill(byte(0xA0 + c))}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if err := pm.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	cur := pm.CursorAt(0)
	frames, err := pm.ReadTail(&cur, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	recs := parseAll(t, frames)

	fstore := pagefile.NewMemStore()
	fpath := filepath.Join(dir, "follower.log")
	fm, _ := openT(t, fpath, fstore, 0)
	if err := fm.AppendRaw(frames, last, len(recs), 2); err != nil {
		t.Fatal(err)
	}
	// A re-sent transaction at or below the appended frontier is a duplicate
	// (the primary resumes from the follower's applied LSN, which can trail
	// the log): it must be dropped without growing the log.
	sizeBefore := fm.Size()
	if err := fm.AppendRaw(frames, last-1, len(recs), 2); err != nil {
		t.Fatalf("duplicate AppendRaw: %v", err)
	}
	if err := fm.AppendRaw(frames, last, len(recs), 2); err != nil {
		t.Fatalf("duplicate AppendRaw at frontier: %v", err)
	}
	if fm.Size() != sizeBefore {
		t.Fatalf("duplicate AppendRaw grew the log: %d -> %d", sizeBefore, fm.Size())
	}
	if err := fm.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	if fm.LastLSN() != last {
		t.Fatalf("follower log at %d, want %d", fm.LastLSN(), last)
	}
	if err := fm.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-restart the follower: replay must rebuild its store byte-for-byte
	// (modulo the page LSN stamp, which both sides derive from the record).
	fm2, rep := openT(t, fpath, fstore, 0)
	defer fm2.Close()
	if rep.Commits != 2 {
		t.Fatalf("replayed %d commits, want 2", rep.Commits)
	}
	for p := uint32(0); p < 2; p++ {
		pid := pagefile.PageID{File: fid, Page: p}
		want := fill(byte(0xA0 + p))
		var got pagefile.Page
		if err := fstore.ReadPage(pid, &got); err != nil {
			t.Fatal(err)
		}
		pagefile.SetPageLSN(&want, pagefile.PageLSN(&got))
		if got != want {
			t.Fatalf("page %v differs after replay", pid)
		}
	}
}

func TestResetToRestartsSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	m, _ := openT(t, path, store, 0)

	if _, _, err := m.AppendCommit(nil, []PageImage{{PID: pagefile.PageID{File: fid}, Data: fill(1)}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.ResetTo(50); err != nil {
		t.Fatal(err)
	}
	if m.BaseLSN() != 50 || m.LastLSN() != 49 || m.DurableLSN() != 49 {
		t.Fatalf("after ResetTo(50): base=%d last=%d durable=%d", m.BaseLSN(), m.LastLSN(), m.DurableLSN())
	}
	c := m.CursorAt(0)
	if _, err := m.ReadTail(&c, 1<<20); !errors.Is(err, ErrTruncated) {
		t.Fatalf("pre-reset cursor: err=%v, want ErrTruncated", err)
	}
	lsn, _, err := m.AppendCommit(nil, []PageImage{{PID: pagefile.PageID{File: fid}, Data: fill(2)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The page record takes LSN 50, the commit record 51.
	if lsn != 51 {
		t.Fatalf("first post-reset commit LSN is %d, want 51", lsn)
	}
	if err := m.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, _ := openT(t, path, store, 0)
	defer m2.Close()
	if m2.BaseLSN() != 50 || m2.LastLSN() != 51 {
		t.Fatalf("reopen after reset: base=%d last=%d, want 50/51", m2.BaseLSN(), m2.LastLSN())
	}
}

func TestWaitDurableAbove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	store := pagefile.NewMemStore()
	fid, _ := store.CreateFile("data")
	m, _ := openT(t, path, store, 0)
	defer m.Close()

	// Timeout path: nothing becomes durable, the call returns promptly with
	// the unchanged boundary.
	start := time.Now()
	if d := m.WaitDurableAbove(0, 50*time.Millisecond); d != 0 {
		t.Fatalf("idle wait returned %d", d)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout wait hung")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(20 * time.Millisecond)
		lsn, _, err := m.AppendCommit(nil, []PageImage{{PID: pagefile.PageID{File: fid}, Data: fill(1)}}, nil)
		if err == nil {
			err = m.WaitDurable(lsn)
		}
		if err != nil {
			t.Error(err)
		}
	}()
	if d := m.WaitDurableAbove(0, 10*time.Second); d == 0 {
		t.Fatal("wait did not observe the new durable LSN")
	}
	<-done
}

// buildReplayLog writes a multi-commit log (file creation, page images, page
// growth) and returns its path plus the page IDs it covers.
func buildReplayLog(t *testing.T) (string, []pagefile.PageID) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	store := pagefile.NewMemStore()
	fid, err := store.CreateFile("data")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := openT(t, path, store, 0)
	var pids []pagefile.PageID
	var last uint64
	for c := 0; c < 3; c++ {
		var imgs []PageImage
		for p := 0; p < 2; p++ {
			pid := pagefile.PageID{File: fid, Page: uint32(c*2 + p)}
			pids = append(pids, pid)
			imgs = append(imgs, PageImage{PID: pid, Data: fill(byte(c*16 + p + 1))})
		}
		var files []FileCreate
		if c == 0 {
			files = []FileCreate{{FID: fid, Name: "data"}}
		}
		lsn, _, err := m.AppendCommit(files, imgs, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if err := m.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return path, pids
}

// fileStore opens a fresh file-backed store. The fault sweeps run over
// FileStore, not MemStore: it checksums pages on the way in and verifies on
// the way out, which is what lets replay detect a torn page (ErrCorruptPage)
// instead of trusting the LSN stamp inside the damaged half.
func fileStore(t *testing.T) *pagefile.FileStore {
	t.Helper()
	st, err := pagefile.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// replayBaseline replays the log into a fresh store and returns the final
// page images — the oracle every faulted recovery must converge to.
func replayBaseline(t *testing.T, path string, pids []pagefile.PageID) []pagefile.Page {
	t.Helper()
	store := fileStore(t)
	defer store.Close()
	m, _ := openT(t, path, store, 0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	out := make([]pagefile.Page, len(pids))
	for i, pid := range pids {
		if err := store.ReadPage(pid, &out[i]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// verifyConverged re-replays fault-free over the half-recovered store and
// checks every page matches the fault-free baseline.
func verifyConverged(t *testing.T, path string, fs *pagefile.FaultStore, pids []pagefile.PageID, want []pagefile.Page, label string) {
	t.Helper()
	fs.ClearFaults()
	m, _, err := Open(path, fs, 0)
	if err != nil {
		t.Fatalf("%s: fault-free re-replay failed: %v", label, err)
	}
	defer m.Close()
	for i, pid := range pids {
		var got pagefile.Page
		if err := fs.ReadPage(pid, &got); err != nil {
			t.Fatalf("%s: page %v unreadable after recovery: %v", label, pid, err)
		}
		if got != want[i] {
			t.Fatalf("%s: page %v diverged after faulted recovery", label, pid)
		}
	}
}

// replayOps counts the store operations one fault-free replay performs, so
// the sweeps know the index range to drive faults through.
func replayOps(t *testing.T, path string) int64 {
	t.Helper()
	fs := pagefile.NewFaultStore(fileStore(t))
	defer fs.Close()
	m, _, err := Open(path, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Ops() == 0 {
		t.Fatal("replay performed no store operations; the sweep would test nothing")
	}
	return fs.Ops()
}

// TestReplayFaultSweep drives recovery into an injected store failure at
// every I/O the replay performs. Each trial must fail loudly with the
// injected error wrapped (never a silent half-replay), and a subsequent
// fault-free open must converge the store to the fault-free baseline.
func TestReplayFaultSweep(t *testing.T) {
	path, pids := buildReplayLog(t)
	want := replayBaseline(t, path, pids)

	for n := int64(0); n < replayOps(t, path); n++ {
		fs := pagefile.NewFaultStore(fileStore(t))
		fs.AddFault(pagefile.Fault{Index: n})
		_, _, err := Open(path, fs, 0)
		if err == nil {
			t.Fatalf("op %d: fault injected but Open reported success", n)
		}
		if !errors.Is(err, pagefile.ErrInjected) {
			t.Fatalf("op %d: injected fault surfaced without wrapping: %v", n, err)
		}
		verifyConverged(t, path, fs, pids, want, "clean fault")
		fs.Close()
	}
}

// TestReplayTornWriteSweep is the sweep with torn writes: the failing write
// persists half the new image (no checksum), the exact page a kernel crash
// mid-write leaves behind. Recovery must still converge.
func TestReplayTornWriteSweep(t *testing.T) {
	path, pids := buildReplayLog(t)
	want := replayBaseline(t, path, pids)

	trials := 0
	for n := int64(0); n < replayOps(t, path); n++ {
		fs := pagefile.NewFaultStore(fileStore(t))
		fs.AddFault(pagefile.Fault{Index: n, Op: pagefile.OpWrite, Torn: true})
		m, _, err := Open(path, fs, 0)
		if fs.Injected() == 0 {
			// Operation n was not a write; nothing fired this round.
			if err != nil {
				t.Fatalf("op %d: no injection but Open failed: %v", n, err)
			}
			m.Close()
			fs.Close()
			continue
		}
		trials++
		if err == nil || !errors.Is(err, pagefile.ErrInjected) {
			t.Fatalf("write op %d: err=%v, want wrapped ErrInjected", n, err)
		}
		verifyConverged(t, path, fs, pids, want, "torn write")
		fs.Close()
	}
	if trials == 0 {
		t.Fatal("no write operations swept")
	}
}
