// Package wal implements a page-oriented redo write-ahead log.
//
// The log is a single append-only file. A 16-byte header (magic, version,
// base LSN) is followed by a sequence of records framed as
//
//	u32 bodyLen | u32 crc32(body) | body
//	body = u8 type | u64 lsn | payload
//
// Record types:
//
//	page:       fid u32 | page u32 | full 4096-byte image (LSN pre-stamped)
//	commit:     no payload; makes every record since the previous commit real
//	catalog:    opaque catalog snapshot (JSON) to restore at recovery
//	fileCreate: fid u32 | name; replay recreates files a committed
//	            transaction created that are missing after a crash
//
// The log is redo-only: transactions append full after-images of every page
// they dirtied plus a commit record, and fsync the log before the commit is
// acknowledged. Dirty pages may only reach the data files after the log
// records covering them are durable (the buffer pool asks EnsureDurablePage
// before any write-back). Recovery scans the log, stops at the first torn or
// corrupt record (an unacknowledged tail), and re-applies every committed
// page image whose LSN is newer than the on-disk page. Checkpoint truncates
// the log after the data files themselves are durable, carrying the LSN
// sequence forward in the header so LSNs stay monotone for the life of the
// database.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/exodb/fieldrepl/internal/obs"
	"github.com/exodb/fieldrepl/internal/pagefile"
)

const (
	walMagic   = 0x57A1F17E
	walVersion = 1
	headerSize = 16 // magic u32 | version u32 | baseLSN u64

	// RecPage, RecCommit, RecCatalog and RecFileCreate are the framed record
	// types. They are exported so the replication layer, which ships raw
	// frames to followers, can decode what it is applying.
	RecPage       = 1
	RecCommit     = 2
	RecCatalog    = 3
	RecFileCreate = 4

	// maxBodyLen bounds a record body during the recovery scan; anything
	// larger is treated as a torn tail rather than risking a huge allocation
	// from corrupt length bytes.
	maxBodyLen = pagefile.PageSize + 1<<16
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// FileCreate records a page file created inside a transaction.
type FileCreate struct {
	FID  pagefile.FileID
	Name string
}

// PageImage is one dirty page's after-image headed for the log. Append
// assigns LSN and stamps it into Data before computing the record CRC, so
// the logged image and the caller's copy agree.
type PageImage struct {
	PID  pagefile.PageID
	Data pagefile.Page
	LSN  uint64
}

// Stats is a point-in-time snapshot of log activity. Fsyncs much smaller
// than Commits is group commit working; SyncWaits/SharedSyncs decompose it:
// a shared sync is a durability wait satisfied by another committer's fsync
// (the follower half of leader/follower batching).
type Stats struct {
	Records     int64 `json:"records"`
	Commits     int64 `json:"commits"`
	Fsyncs      int64 `json:"fsyncs"`
	Bytes       int64 `json:"bytes"`
	Checkpoints int64 `json:"checkpoints"`
	// CheckpointsDeferred counts checkpoints that skipped truncation because
	// a replication consumer still needed the retained records.
	CheckpointsDeferred int64 `json:"checkpoints_deferred"`
	// SyncWaits counts WaitDurable calls that found their LSN not yet
	// durable and actually waited; SharedSyncs counts the subset resolved by
	// another caller's fsync. SyncQueue is the instantaneous number of
	// committers inside the durability wait (the group-commit queue depth).
	SyncWaits   int64 `json:"sync_waits"`
	SharedSyncs int64 `json:"shared_syncs"`
	SyncQueue   int64 `json:"sync_queue"`
}

// RecoveryReport summarizes what Open's replay did.
type RecoveryReport struct {
	Commits      int    // committed transactions replayed
	PagesApplied int    // page images written to the store
	PagesSkipped int    // page images the store already had (disk LSN >= record LSN)
	FilesCreated int    // missing page files recreated
	TornTail     bool   // the scan stopped at a torn or corrupt record
	Catalog      []byte // last committed catalog snapshot, nil if none logged
}

// Manager is the append side of the log. All methods are safe for concurrent
// use. The fsync path is split from the append path so that concurrent
// committers batch: one leader fsyncs while followers wait, and a follower
// whose LSN the leader covered returns without its own fsync.
type Manager struct {
	path string

	mu       sync.Mutex // guards f (writes), off, nextLSN, appended, pageLSN, closed, broken
	f        *os.File
	off      int64 // append position: end of the valid record prefix
	nextLSN  uint64
	appended uint64 // highest LSN handed to the OS
	pageLSN  map[pagefile.PageID]uint64
	closed   bool
	broken   bool // a failed append left bytes we could not truncate away

	syncMu   sync.Mutex    // serializes fsyncs; the group-commit leader lock
	durable  atomic.Uint64 // highest LSN known fsync'd
	interval time.Duration // optional batching window before claiming leadership

	// Shipping state (guarded by mu). base is the header's base LSN; epoch
	// increments every time the log is truncated or reset, invalidating tail
	// cursors whose file offsets refer to the previous log generation;
	// durableOff is the file offset covered by the last fsync — the shipping
	// boundary, so a tail reader never ships bytes a crash could take back.
	base       uint64
	epoch      uint64
	durableOff int64
	// notify is closed and replaced whenever the durable LSN advances (or the
	// log closes), waking tail readers blocked in WaitDurableAbove.
	notify chan struct{}
	// retain, when set, reports the minimum LSN a log consumer (the
	// replication shipper) still needs; Checkpoint defers truncation while
	// records at or after it would be lost, unless the log has grown past
	// retainBytes (0 = no bound), at which point truncation is forced and the
	// lagging consumer must full-resync.
	retain      func() (uint64, bool)
	retainBytes int64

	records     atomic.Int64
	commits     atomic.Int64
	fsyncs      atomic.Int64
	bytes       atomic.Int64
	checkpoints atomic.Int64

	// Group-commit contention telemetry: how long committers spend in the
	// durability rendezvous, how many actually wait, how many are satisfied
	// by a leader's fsync, and how many are queued right now.
	fsyncWait   *obs.Histogram
	syncWaits   atomic.Int64
	sharedSyncs atomic.Int64
	syncQueue   atomic.Int64

	ckptDeferred atomic.Int64
}

// Open opens (creating if absent) the log at path, replays any committed
// records into store, and returns the manager ready for appends. Replay does
// not truncate the log: the caller must make the replayed state durable
// (store sync + catalog rewrite) and then call Checkpoint, so a crash during
// recovery just replays again. interval is the optional group-commit
// batching window (see WaitDurable).
func Open(path string, store pagefile.Store, interval time.Duration) (*Manager, *RecoveryReport, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	m := &Manager{
		path:      path,
		f:         f,
		pageLSN:   make(map[pagefile.PageID]uint64),
		interval:  interval,
		fsyncWait: obs.NewHistogram(),
		notify:    make(chan struct{}),
	}
	rep := &RecoveryReport{}

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: stat: %w", err)
	}
	if st.Size() < headerSize {
		// Fresh (or torn-before-header) log: write a clean header.
		if err := m.writeHeader(1); err != nil {
			f.Close()
			return nil, nil, err
		}
		m.nextLSN = 1
		m.appended = 0
		m.off = headerSize
		m.durable.Store(0)
		return m, rep, nil
	}

	base, err := m.readHeader()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	last, end, err := m.replay(store, base, rep)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	m.nextLSN = last + 1
	m.appended = last
	m.durable.Store(last)
	// Appends resume at the end of the valid prefix; a torn tail is
	// overwritten by the next append.
	m.off = end
	m.base = base
	// Everything replayed was applied to the store; treat the valid prefix as
	// the shipping boundary (the caller checkpoints right after recovery).
	m.durableOff = end
	return m, rep, nil
}

func (m *Manager) writeHeader(base uint64) error {
	var h [headerSize]byte
	binary.LittleEndian.PutUint32(h[0:], walMagic)
	binary.LittleEndian.PutUint32(h[4:], walVersion)
	binary.LittleEndian.PutUint64(h[8:], base)
	if err := m.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := m.f.WriteAt(h[:], 0); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync header: %w", err)
	}
	m.fsyncs.Add(1)
	// The log restarted: offsets from the previous generation are invalid.
	m.base = base
	m.epoch++
	m.durableOff = headerSize
	return nil
}

func (m *Manager) readHeader() (uint64, error) {
	var h [headerSize]byte
	if _, err := m.f.ReadAt(h[:], 0); err != nil {
		return 0, fmt.Errorf("wal: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(h[0:]) != walMagic {
		return 0, fmt.Errorf("wal: %s is not a log file", m.path)
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != walVersion {
		return 0, fmt.Errorf("wal: unsupported version %d", v)
	}
	return binary.LittleEndian.Uint64(h[8:]), nil
}

// replay scans the log from the header, applying records commit-by-commit,
// and returns the LSN of the last valid record (or base-1 if none) and the
// file offset just past it.
func (m *Manager) replay(store pagefile.Store, base uint64, rep *RecoveryReport) (uint64, int64, error) {
	lastLSN := base - 1
	off := int64(headerSize)

	// Pending records of the transaction currently being scanned; applied
	// only when its commit record is reached, discarded at a torn tail.
	var pendFiles []FileCreate
	var pendPages []PageImage
	var pendCatalog []byte

	var frame [8]byte
	for {
		if _, err := m.f.ReadAt(frame[:], off); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return 0, 0, fmt.Errorf("wal: replay read: %w", err)
		}
		bodyLen := binary.LittleEndian.Uint32(frame[0:])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if bodyLen < 9 || bodyLen > maxBodyLen {
			rep.TornTail = true
			break
		}
		body := make([]byte, bodyLen)
		if _, err := m.f.ReadAt(body, off+8); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				rep.TornTail = true
				break
			}
			return 0, 0, fmt.Errorf("wal: replay read: %w", err)
		}
		if crc32.ChecksumIEEE(body) != crc {
			rep.TornTail = true
			break
		}
		typ := body[0]
		lsn := binary.LittleEndian.Uint64(body[1:])
		payload := body[9:]

		switch typ {
		case RecFileCreate:
			if len(payload) < 4 {
				rep.TornTail = true
				goto done
			}
			pendFiles = append(pendFiles, FileCreate{
				FID:  pagefile.FileID(binary.LittleEndian.Uint32(payload)),
				Name: string(payload[4:]),
			})
		case RecPage:
			if len(payload) != 8+pagefile.PageSize {
				rep.TornTail = true
				goto done
			}
			img := PageImage{
				PID: pagefile.PageID{
					File: pagefile.FileID(binary.LittleEndian.Uint32(payload)),
					Page: binary.LittleEndian.Uint32(payload[4:]),
				},
				LSN: lsn,
			}
			copy(img.Data[:], payload[8:])
			pendPages = append(pendPages, img)
		case RecCatalog:
			pendCatalog = append([]byte(nil), payload...)
		case RecCommit:
			if err := m.applyCommitted(store, pendFiles, pendPages, rep); err != nil {
				return 0, 0, err
			}
			if pendCatalog != nil {
				rep.Catalog = pendCatalog
			}
			pendFiles, pendPages, pendCatalog = nil, nil, nil
			rep.Commits++
		default:
			rep.TornTail = true
			goto done
		}
		lastLSN = lsn
		off += 8 + int64(bodyLen)
	}
done:
	// Anything pending without a commit record is an unacknowledged tail.
	return lastLSN, off, nil
}

// applyCommitted redoes one committed transaction during recovery replay,
// counting the applied records in the manager's stats.
func (m *Manager) applyCommitted(store pagefile.Store, files []FileCreate, pages []PageImage, rep *RecoveryReport) error {
	if err := ApplyCommitted(store, files, pages, rep); err != nil {
		return err
	}
	m.records.Add(int64(len(files) + len(pages)))
	return nil
}

// ApplyCommitted redoes one committed transaction onto store: recreate
// missing files, then write each page image unless the store already has a
// same-or-newer version (strictly-less comparison: a disk page with an equal
// LSN is left alone, and pages written outside the log carry LSN 0 and are
// only overwritten when unreadable). It is idempotent, which is what lets
// recovery replay and follower apply share it: re-applying an already
// applied transaction only bumps PagesSkipped.
func ApplyCommitted(store pagefile.Store, files []FileCreate, pages []PageImage, rep *RecoveryReport) error {
	for _, fc := range files {
		if _, err := store.FileName(fc.FID); err == nil {
			continue // file survived the crash
		}
		if err := fillFIDGap(store, fc.FID, rep); err != nil {
			return err
		}
		got, err := store.CreateFile(fc.Name)
		if err != nil {
			return fmt.Errorf("wal: replay create file %q: %w", fc.Name, err)
		}
		if got != fc.FID {
			return fmt.Errorf("wal: replay created file %q as %d, log says %d", fc.Name, got, fc.FID)
		}
		rep.FilesCreated++
	}
	var cur pagefile.Page
	for i := range pages {
		img := &pages[i]
		// Grow the file until the logged page exists. Allocate appends
		// zeroed pages, so intermediate pages a crash orphaned scan as
		// empty.
		for {
			n, err := store.NumPages(img.PID.File)
			if err != nil {
				return fmt.Errorf("wal: replay file %d: %w", img.PID.File, err)
			}
			if img.PID.Page < n {
				break
			}
			if _, err := store.Allocate(img.PID.File); err != nil {
				return fmt.Errorf("wal: replay allocate: %w", err)
			}
		}
		apply := false
		switch err := store.ReadPage(img.PID, &cur); {
		case err == nil:
			apply = pagefile.PageLSN(&cur) < img.LSN
		case errors.Is(err, pagefile.ErrCorruptPage):
			apply = true // torn or bit-flipped on disk; the log has the good image
		default:
			return fmt.Errorf("wal: replay read page %v: %w", img.PID, err)
		}
		if !apply {
			rep.PagesSkipped++
			continue
		}
		if err := store.WritePage(img.PID, &img.Data); err != nil {
			return fmt.Errorf("wal: replay write page %v: %w", img.PID, err)
		}
		rep.PagesApplied++
	}
	return nil
}

// fillFIDGap grows the store's file-ID sequence with placeholder files until
// the next CreateFile lands on fid. The log can reference IDs the store never
// allocated: unlogged scratch files (query outputs) consume IDs without a
// FileCreate record, and on a replica those files never exist at all. Both
// replay paths — restart recovery here in Open and live follower apply —
// must burn the same IDs so a logged FileCreate lands where the log says;
// sharing this helper is what keeps a crash between a follower's log append
// and its store apply recoverable.
func fillFIDGap(store pagefile.Store, fid pagefile.FileID, rep *RecoveryReport) error {
	next := pagefile.FileID(1)
	for {
		if _, err := store.FileName(next); errors.Is(err, pagefile.ErrNoSuchFile) {
			break
		} else if err != nil {
			return fmt.Errorf("wal: replay probe file %d: %w", next, err)
		}
		next++
	}
	for ; next < fid; next++ {
		got, err := store.CreateFile(fmt.Sprintf("__repl_gap_%d", next))
		if err != nil {
			return fmt.Errorf("wal: replay gap file %d: %w", next, err)
		}
		if got != next {
			return fmt.Errorf("wal: replay gap file created as %d, expected %d", got, next)
		}
		rep.FilesCreated++
	}
	return nil
}

// AppendCommit appends one transaction — file creations, page after-images,
// an optional catalog snapshot, and the commit record — as a single write.
// It assigns LSNs, stamping each page image's LSN into Data (and into the
// returned slice) before the CRC is computed, and returns the commit
// record's LSN for WaitDurable, along with the number of log bytes
// appended. The commit is not durable until WaitDurable returns.
func (m *Manager) AppendCommit(files []FileCreate, pages []PageImage, catalog []byte) (uint64, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, 0, ErrClosed
	}
	if m.broken {
		return 0, 0, errors.New("wal: log poisoned by an earlier failed append")
	}
	var buf []byte
	for _, fc := range files {
		payload := make([]byte, 4+len(fc.Name))
		binary.LittleEndian.PutUint32(payload, uint32(fc.FID))
		copy(payload[4:], fc.Name)
		buf = m.frameRecord(buf, RecFileCreate, payload)
	}
	for i := range pages {
		img := &pages[i]
		// The LSN is part of the logged image: stamp before framing so the
		// record CRC covers it and replay comparisons see it.
		img.LSN = m.nextLSN
		pagefile.SetPageLSN(&img.Data, img.LSN)
		payload := make([]byte, 8+pagefile.PageSize)
		binary.LittleEndian.PutUint32(payload, uint32(img.PID.File))
		binary.LittleEndian.PutUint32(payload[4:], img.PID.Page)
		copy(payload[8:], img.Data[:])
		buf = m.frameRecord(buf, RecPage, payload)
	}
	if catalog != nil {
		buf = m.frameRecord(buf, RecCatalog, catalog)
	}
	buf = m.frameRecord(buf, RecCommit, nil)
	commitLSN := m.nextLSN - 1

	if _, err := m.f.WriteAt(buf, m.off); err != nil {
		// A partial append is garbage mid-log: later commits appended after
		// it would be unreachable at replay (the scan stops at the first bad
		// record). Truncate the partial bytes away; if even that fails, the
		// log can no longer accept commits.
		if terr := m.f.Truncate(m.off); terr != nil {
			m.broken = true
		}
		// The consumed LSNs are simply skipped; the sequence stays monotone.
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	m.off += int64(len(buf))
	for i := range pages {
		m.pageLSN[pages[i].PID] = pages[i].LSN
	}
	m.appended = commitLSN
	m.records.Add(int64(len(files)+len(pages)) + 1)
	if catalog != nil {
		m.records.Add(1)
	}
	m.commits.Add(1)
	m.bytes.Add(int64(len(buf)))
	return commitLSN, len(buf), nil
}

// frameRecord appends one framed record to buf, consuming the next LSN.
func (m *Manager) frameRecord(buf []byte, typ byte, payload []byte) []byte {
	body := make([]byte, 9+len(payload))
	body[0] = typ
	binary.LittleEndian.PutUint64(body[1:], m.nextLSN)
	copy(body[9:], payload)
	m.nextLSN++

	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	buf = append(buf, frame[:]...)
	return append(buf, body...)
}

// WaitDurable blocks until every record up to and including lsn is fsync'd.
// This is the group-commit rendezvous: if a configured CommitInterval is
// set, the caller first sleeps that window so concurrent commits pile up;
// then the first waiter through the sync lock fsyncs on behalf of everyone
// appended so far, and the rest find their LSN already durable and return
// without an fsync of their own.
func (m *Manager) WaitDurable(lsn uint64) error {
	if m.durable.Load() >= lsn {
		return nil
	}
	// The wait is real: time it (the fsync-wait histogram is the "where did
	// my commit's wall time go" decomposition) and track the queue depth.
	m.syncWaits.Add(1)
	m.syncQueue.Add(1)
	start := time.Now()
	if m.interval > 0 {
		time.Sleep(m.interval)
	}
	shared, err := m.syncTo(lsn)
	m.fsyncWait.Observe(time.Since(start))
	m.syncQueue.Add(-1)
	if shared {
		m.sharedSyncs.Add(1)
	}
	return err
}

// syncTo makes the log durable through lsn. shared reports that the caller
// did not fsync itself — another committer's fsync already covered lsn.
func (m *Manager) syncTo(lsn uint64) (shared bool, err error) {
	if m.durable.Load() >= lsn {
		return true, nil
	}
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	if m.durable.Load() >= lsn {
		return true, nil // a leader's fsync covered us while we waited
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false, ErrClosed
	}
	target := m.appended
	targetOff := m.off
	f := m.f
	m.mu.Unlock()
	if err := f.Sync(); err != nil {
		return false, fmt.Errorf("wal: fsync: %w", err)
	}
	m.fsyncs.Add(1)
	m.durable.Store(target)
	// Publish the new shipping boundary and wake tail readers. The offset is
	// compared because a checkpoint between the capture above and here resets
	// durableOff for the new log generation.
	m.mu.Lock()
	if targetOff > m.durableOff {
		m.durableOff = targetOff
	}
	close(m.notify)
	m.notify = make(chan struct{})
	m.mu.Unlock()
	return false, nil
}

// EnsureDurablePage is the buffer pool's write barrier: it must be called
// before a dirty page is written back to the store, and fsyncs the log
// through the page's last logged record. Pages never logged (DDL writes,
// scratch files, pre-WAL state) need no barrier and return immediately.
func (m *Manager) EnsureDurablePage(pid pagefile.PageID) error {
	m.mu.Lock()
	lsn, ok := m.pageLSN[pid]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	_, err := m.syncTo(lsn)
	return err
}

// Checkpoint truncates the log, carrying the LSN sequence forward in the
// header. The caller must have flushed and fsync'd the data files (and
// persisted the catalog) first: after Checkpoint the log no longer covers
// them.
//
// When a retain hook is registered (replication shipping) and a consumer
// still needs records this log holds, truncation is deferred: the data files
// are durable, so the write-barrier entries are dropped, but the records stay
// on disk for the shipper. A deferred checkpoint is not an error. Once the
// log outgrows the configured retain bound the truncation happens anyway and
// the lagging consumer must full-resync.
func (m *Manager) Checkpoint() error {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.retain != nil {
		if minLSN, ok := m.retain(); ok && minLSN < m.appended && (m.retainBytes <= 0 || m.off <= m.retainBytes) {
			m.pageLSN = make(map[pagefile.PageID]uint64)
			m.ckptDeferred.Add(1)
			return nil
		}
	}
	if err := m.writeHeader(m.nextLSN); err != nil {
		return err
	}
	m.off = headerSize
	m.pageLSN = make(map[pagefile.PageID]uint64)
	m.appended = m.nextLSN - 1
	m.durable.Store(m.appended)
	m.checkpoints.Add(1)
	return nil
}

// Stats returns a snapshot of log activity counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Records:             m.records.Load(),
		Commits:             m.commits.Load(),
		Fsyncs:              m.fsyncs.Load(),
		Bytes:               m.bytes.Load(),
		Checkpoints:         m.checkpoints.Load(),
		CheckpointsDeferred: m.ckptDeferred.Load(),
		SyncWaits:           m.syncWaits.Load(),
		SharedSyncs:         m.sharedSyncs.Load(),
		SyncQueue:           m.syncQueue.Load(),
	}
}

// FsyncWaitHist snapshots the durability-wait histogram: the wall time each
// WaitDurable caller spent between asking for durability and getting it
// (batching window + queueing behind the leader + the fsync itself).
func (m *Manager) FsyncWaitHist() obs.HistSnapshot {
	return m.fsyncWait.Snapshot()
}

// Close fsyncs and closes the log file. Further appends fail with ErrClosed.
func (m *Manager) Close() error {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	// Wake tail readers so shipping loops observe the close promptly.
	close(m.notify)
	m.notify = make(chan struct{})
	err := m.f.Sync()
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}
