package fieldrepl

import (
	"net"
	"time"

	"github.com/exodb/fieldrepl/internal/engine"
	"github.com/exodb/fieldrepl/internal/repl"
)

// Physical replication: a primary ships its write-ahead log to read-only
// followers over TCP. Followers replay committed transactions into their own
// store, serve reads at their applied LSN, survive restarts (the stream
// resumes from their local log), and can be promoted to a writable primary
// when the old one dies. See docs/replication.md for the full topology,
// consistency semantics, and the failover runbook.

// ReplicationConfig tunes the primary side of WAL shipping. The zero value
// gives sensible defaults (1s heartbeats, 256 KiB batches, 10s write
// deadline, fully asynchronous, 64 MiB log retention for lagging followers).
type ReplicationConfig struct {
	// Heartbeat is how often an idle stream tells followers the primary is
	// alive and what its durable LSN is (default 1s).
	Heartbeat time.Duration
	// BatchBytes bounds one shipped record batch (default 256 KiB).
	BatchBytes int
	// WriteTimeout is the per-message send deadline. A follower that cannot
	// drain its socket within it is dropped rather than ever blocking the
	// primary's commits (default 10s).
	WriteTimeout time.Duration
	// MinSyncFollowers makes commits semi-synchronous: each commit
	// additionally waits until this many followers have durably acknowledged
	// it. 0 (the default) is fully asynchronous. A wait that exceeds
	// SyncTimeout, or finds no follower connected, degrades to asynchronous
	// and is counted in ReplicationStatus rather than failing the commit.
	MinSyncFollowers int
	// SyncTimeout bounds one semi-synchronous wait (default 5s).
	SyncTimeout time.Duration
	// RetainBytes bounds how large the WAL may grow on behalf of a lagging
	// follower before checkpoints truncate anyway, forcing that follower
	// into a full snapshot resync (default 64 MiB; -1 retains without bound).
	RetainBytes int64
}

func (c ReplicationConfig) internal() repl.Config {
	return repl.Config{
		Heartbeat: c.Heartbeat, BatchBytes: c.BatchBytes, WriteTimeout: c.WriteTimeout,
		MinSyncFollowers: c.MinSyncFollowers, SyncTimeout: c.SyncTimeout, RetainBytes: c.RetainBytes,
	}
}

// FollowerConfig tunes a follower's connection maintenance. The zero value
// gives sensible defaults (3s dials, 100ms–10s jittered exponential backoff,
// 10s idle timeout — nine missed heartbeats).
type FollowerConfig struct {
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
	// MinBackoff and MaxBackoff bound the exponential reconnect backoff
	// (defaults 100ms and 10s); actual sleeps are jittered ±50%.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// IdleTimeout is how long the stream may be silent before the connection
	// is declared dead and redialed (default 10s).
	IdleTimeout time.Duration
}

func (c FollowerConfig) internal() repl.FollowerConfig {
	return repl.FollowerConfig{
		DialTimeout: c.DialTimeout, MinBackoff: c.MinBackoff,
		MaxBackoff: c.MaxBackoff, IdleTimeout: c.IdleTimeout,
	}
}

// ServeReplication starts shipping this database's WAL to followers that
// connect on addr (e.g. ":7071", or ":0" to pick a free port — the bound
// address is returned). The database must be file-backed with the WAL
// enabled. Shipping runs until Close; the primary keeps committing regardless
// of follower health.
func (db *DB) ServeReplication(addr string, cfg ReplicationConfig) (string, error) {
	defer db.lock()()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if err := db.e.ServeReplication(ln, cfg.internal()); err != nil {
		_ = ln.Close()
		return "", err
	}
	return ln.Addr().String(), nil
}

// OpenFollower opens cfg.Dir as a read-only replica of the primary at
// primaryAddr. A fresh directory receives a full snapshot; a restarted
// follower resumes streaming from its local log's last durable LSN. The
// session is maintained in the background with reconnect backoff — the
// handle is usable (for reads) even while the primary is unreachable. All
// writes fail with ErrNotPrimary until Promote. cfg must be file-backed with
// the WAL enabled.
func OpenFollower(cfg Config, primaryAddr string, fcfg FollowerConfig) (*DB, error) {
	e, err := engine.OpenFollower(cfg.engineConfig(), primaryAddr, fcfg.internal())
	if err != nil {
		return nil, err
	}
	return newDB(e), nil
}

// Promote turns a follower into a writable primary after the old primary is
// gone: the replication session stops, applied state is forced durable, and
// writes are accepted. Promote refuses with ErrFollowerLagged while the old
// primary is still alive and ahead — promoting then would fork the history.
// The old primary must never come back as a primary; wipe it and re-attach
// it as a follower of the promoted one.
func (db *DB) Promote() error { defer db.lock()(); return db.e.Promote() }

// ReplFollowerInfo is one connected follower as the primary sees it.
type ReplFollowerInfo struct {
	Addr     string `json:"addr"`
	AckedLSN uint64 `json:"acked_lsn"`
	SentLSN  uint64 `json:"sent_lsn"`
	// LagLSN is the primary's durable LSN minus the follower's last ack.
	LagLSN uint64 `json:"lag_lsn"`
	// LagMs is how long the follower has been behind, in milliseconds: time
	// since its oldest outstanding (sent, unacked) batch. 0 while caught up.
	LagMs        float64 `json:"lag_ms"`
	ConnectedSec float64 `json:"connected_sec"`
}

// ReplPrimaryStatus is the shipping primary's view of replication.
type ReplPrimaryStatus struct {
	LastLSN    uint64             `json:"last_lsn"`
	DurableLSN uint64             `json:"durable_lsn"`
	Followers  []ReplFollowerInfo `json:"followers"`
	// SyncTimeouts counts semi-sync waits that degraded to asynchronous;
	// Unreplicated counts semi-sync commits acked with no follower connected.
	SyncTimeouts int64 `json:"sync_timeouts"`
	Unreplicated int64 `json:"unreplicated"`
	// Resyncs counts followers sent back for a full snapshot after log
	// truncation outran them; Snapshots counts snapshots shipped.
	Resyncs   int64 `json:"resyncs"`
	Snapshots int64 `json:"snapshots"`
}

// ReplFollowerStatus is a follower's view of its session to the primary.
type ReplFollowerStatus struct {
	Connected  bool   `json:"connected"`
	AppliedLSN uint64 `json:"applied_lsn"`
	// PrimaryDurableLSN is the primary's durable LSN as of the last
	// heartbeat; LagLSN is how far applied trails it.
	PrimaryDurableLSN uint64 `json:"primary_durable_lsn"`
	LagLSN            uint64 `json:"lag_lsn"`
	Reconnects        int64  `json:"reconnects"`
	// BadFrames counts record batches rejected for framing or CRC damage.
	BadFrames int64  `json:"bad_frames"`
	Snapshots int64  `json:"snapshots"`
	LastError string `json:"last_error,omitempty"`
}

// ReplicationStatus reports the database's replication role ("primary" or
// "follower") and, when replication is active, the side-specific state.
type ReplicationStatus struct {
	Role     string              `json:"role"`
	Primary  *ReplPrimaryStatus  `json:"primary,omitempty"`
	Follower *ReplFollowerStatus `json:"follower,omitempty"`
}

// ReplicationStatus reports role, per-follower lag (on a shipping primary),
// and connection/apply progress (on a follower). Safe to call from anywhere;
// it reads lock-free snapshots.
func (db *DB) ReplicationStatus() ReplicationStatus {
	st := db.e.ReplicationStatus()
	out := ReplicationStatus{Role: st.Role}
	if p := st.Primary; p != nil {
		pub := ReplPrimaryStatus{
			LastLSN: p.LastLSN, DurableLSN: p.DurableLSN,
			SyncTimeouts: p.SyncTimeouts, Unreplicated: p.Unreplicated,
			Resyncs: p.Resyncs, Snapshots: p.Snapshots,
		}
		for _, fi := range p.Followers {
			pub.Followers = append(pub.Followers, ReplFollowerInfo{
				Addr: fi.Addr, AckedLSN: fi.AckedLSN, SentLSN: fi.SentLSN,
				LagLSN: fi.LagLSN, LagMs: fi.LagMs, ConnectedSec: fi.ConnectedSec,
			})
		}
		out.Primary = &pub
	}
	if f := st.Follower; f != nil {
		out.Follower = &ReplFollowerStatus{
			Connected: f.Connected, AppliedLSN: f.AppliedLSN,
			PrimaryDurableLSN: f.PrimaryDurableLSN, LagLSN: f.LagLSN,
			Reconnects: f.Reconnects, BadFrames: f.BadFrames,
			Snapshots: f.Snapshots, LastError: f.LastError,
		}
	}
	return out
}

// CrashStop simulates kill -9 for failover drills and crash-recovery tests:
// store and log handles are closed without flushing anything. In-flight
// commits whose fsync had not completed fail; everything acknowledged durable
// stays on disk. The handle is unusable afterwards — reopen the directory to
// recover.
func (db *DB) CrashStop() { defer db.lock()(); db.e.CrashStop() }
